#include <gtest/gtest.h>

#include <set>

#include "core/study.h"

namespace curtain::measure {
namespace {

TEST(ResolverIdentifier, UniqueNamesPerProbe) {
  const ResolverIdentifier identifier(*dns::DnsName::parse("curtain-study.net"));
  const auto a = identifier.probe_name(1, 1);
  const auto b = identifier.probe_name(1, 2);
  const auto c = identifier.probe_name(2, 1);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.is_within(*dns::DnsName::parse("adns.curtain-study.net")));
}

TEST(ResolverIdentifier, ExtractFindsARecord) {
  std::vector<dns::ResourceRecord> answers{
      dns::ResourceRecord::a(*dns::DnsName::parse("r1.adns.curtain-study.net"),
                             net::Ipv4Addr{20, 3, 4, 5}, 0)};
  const auto ip = ResolverIdentifier::extract(answers);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, net::Ipv4Addr(20, 3, 4, 5));
  EXPECT_FALSE(ResolverIdentifier::extract({}).has_value());
}

TEST(ResolverKindNames, Stable) {
  EXPECT_STREQ(resolver_kind_name(ResolverKind::kLocal), "local");
  EXPECT_STREQ(resolver_kind_name(ResolverKind::kGoogle), "GoogleDNS");
  EXPECT_STREQ(resolver_kind_name(ResolverKind::kOpenDns), "OpenDNS");
}

TEST(CampaignConfig, ScaledShortensDuration) {
  const auto full = CampaignConfig::scaled(1.0);
  EXPECT_DOUBLE_EQ(full.duration_days, 153.0);
  EXPECT_DOUBLE_EQ(full.participation, 0.048);
  const auto small = CampaignConfig::scaled(0.05);
  EXPECT_NEAR(small.duration_days, 7.65, 0.01);
  EXPECT_GT(small.participation, full.participation);
}

// One shared tiny study exercises the whole measurement pipeline.
class MeasurePipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // ~0.6 days, a few hundred experiments
    study_ = new core::Study(
        core::Scenario::paper_2014().with_seed(7).with_scale(0.004));
    study_->run();
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static core::Study* study_;
};

core::Study* MeasurePipelineTest::study_ = nullptr;

TEST_F(MeasurePipelineTest, FleetMatchesTableOne) {
  EXPECT_EQ(study_->device_count(), 158u);
}

TEST_F(MeasurePipelineTest, ExperimentsProduced) {
  EXPECT_GT(study_->records().experiment_count(), 50u);
}

TEST_F(MeasurePipelineTest, ResolutionCountsPerExperiment) {
  // 9 domains x 3 resolver kinds x 2 lookups = 54 per experiment, plus
  // possible failures still recorded.
  const auto& d = study_->records();
  EXPECT_EQ(d.resolution_count(), d.experiment_count() * 54u);
}

TEST_F(MeasurePipelineTest, SecondLookupsAreFasterTypically) {
  const auto& d = study_->records();
  double first_sum = 0.0;
  double second_sum = 0.0;
  size_t first_n = 0;
  size_t second_n = 0;
  for (const auto& r : d.resolutions()) {
    if (!r.responded || r.resolver != ResolverKind::kLocal) continue;
    if (r.second_lookup) {
      second_sum += r.resolution_ms;
      ++second_n;
    } else {
      first_sum += r.resolution_ms;
      ++first_n;
    }
  }
  ASSERT_GT(first_n, 0u);
  ASSERT_GT(second_n, 0u);
  EXPECT_LT(second_sum / static_cast<double>(second_n),
            first_sum / static_cast<double>(first_n));
}

TEST_F(MeasurePipelineTest, ExperimentContextsPopulated) {
  for (const auto& context : study_->records().experiments()) {
    EXPECT_LT(context.carrier_index, 6);
    EXPECT_FALSE(context.public_ip.is_unspecified());
    EXPECT_FALSE(context.configured_resolver.is_unspecified());
  }
}

TEST_F(MeasurePipelineTest, ReplicaProbesComeInPingHttpPairs) {
  const auto& d = study_->records();
  size_t ping = 0;
  size_t http = 0;
  for (const auto& probe : d.probes()) {
    if (probe.target_kind != ProbeTargetKind::kReplica) continue;
    (probe.is_http ? http : ping) += 1;
  }
  EXPECT_EQ(ping, http);
  EXPECT_GT(ping, 0u);
}

TEST_F(MeasurePipelineTest, ResolverObservationsIdentifyExternals) {
  const auto& d = study_->records();
  size_t responded = 0;
  for (const auto& observation : d.observations()) {
    if (observation.responded) {
      ++responded;
      EXPECT_FALSE(observation.external_ip.is_unspecified());
    }
  }
  // Identification works through every resolver kind almost always.
  EXPECT_GT(responded, d.observation_count() * 9 / 10);
}

TEST_F(MeasurePipelineTest, ObservedLocalExternalsBelongToCarrier) {
  const auto& d = study_->records();
  for (const auto& observation : d.observations()) {
    if (observation.resolver != ResolverKind::kLocal || !observation.responded) {
      continue;
    }
    const auto& context = d.context_of(observation.experiment_id);
    auto& carrier = study_->world().carrier(
        static_cast<size_t>(context.carrier_index));
    bool found = false;
    for (const auto& resolver : carrier.external_resolvers()) {
      found |= resolver->ip() == observation.external_ip;
    }
    EXPECT_TRUE(found) << observation.external_ip.to_string();
  }
}

TEST_F(MeasurePipelineTest, GoogleObservationsLandInGoogleSites) {
  const auto& d = study_->records();
  std::set<uint32_t> google_prefixes;
  for (const auto& site : study_->world().google_dns().sites()) {
    google_prefixes.insert(site.prefix.address().value());
  }
  for (const auto& observation : d.observations()) {
    if (observation.resolver != ResolverKind::kGoogle || !observation.responded) {
      continue;
    }
    EXPECT_TRUE(
        google_prefixes.count(observation.external_ip.slash24().value()));
  }
}

TEST_F(MeasurePipelineTest, TraceroutesRecorded) {
  const auto& d = study_->records();
  EXPECT_GT(d.traceroute_count(), 0u);
  size_t with_gateway_first = 0;
  size_t nonempty = 0;
  for (const auto& trace : d.traceroutes()) {
    if (trace.hop_count == 0) continue;
    ++nonempty;
    const auto& context = d.context_of(trace.experiment_id);
    const auto& carrier_name =
        cellular::study_carriers()[static_cast<size_t>(context.carrier_index)]
            .name;
    if (trace.hop(0).rfind(carrier_name, 0) == 0) {
      ++with_gateway_first;
    }
  }
  ASSERT_GT(nonempty, 0u);
  EXPECT_EQ(with_gateway_first, nonempty);  // PGW is always the first hop
}

TEST_F(MeasurePipelineTest, VantageProbesCoverObservedResolvers) {
  EXPECT_GT(study_->records().vantage_count(), 0u);
}

TEST_F(MeasurePipelineTest, DeterministicForSeed) {
  core::Study replay(
      core::Scenario::paper_2014().with_seed(7).with_scale(0.004));
  replay.run();
  const auto& a = study_->records();
  const auto& b = replay.records();
  ASSERT_EQ(a.experiment_count(), b.experiment_count());
  ASSERT_EQ(a.resolution_count(), b.resolution_count());
  for (size_t i = 0; i < a.resolution_count(); i += 97) {
    EXPECT_DOUBLE_EQ(a.resolution_at(i).resolution_ms,
                     b.resolution_at(i).resolution_ms);
  }
}

}  // namespace
}  // namespace curtain::measure
