// Remaining net-substrate corners: route-cache invalidation, boundary
// queries, metro catalogs, world-level wiring invariants.
#include <gtest/gtest.h>

#include <set>

#include "core/world.h"
#include "net/topology.h"

namespace curtain::net {
namespace {

TEST(TopologyCache, RoutesRecomputedAfterMutation) {
  Topology topo;
  auto add = [&topo](const char* name) {
    Node node;
    node.processing = LatencyModel::fixed(0.0);
    node.name = name;
    return topo.add_node(node);
  };
  const NodeId a = add("a");
  const NodeId b = add("b");
  const NodeId c = add("c");
  topo.add_link(a, b, LatencyModel::fixed(10.0));
  topo.add_link(b, c, LatencyModel::fixed(10.0));
  EXPECT_EQ(topo.route(a, c).size(), 3u);
  // A new shortcut must invalidate the cached a->c route.
  topo.add_link(a, c, LatencyModel::fixed(5.0));
  EXPECT_EQ(topo.route(a, c).size(), 2u);
}

TEST(TopologyCache, RouteIsDirectional) {
  Topology topo;
  auto add = [&topo](const char* name) {
    Node node;
    node.name = name;
    return topo.add_node(node);
  };
  const NodeId x = add("x");
  const NodeId y = add("y");
  topo.add_link(x, y, LatencyModel::fixed(1.0));
  EXPECT_EQ(topo.route(x, y).front(), x);
  EXPECT_EQ(topo.route(y, x).front(), y);
}

TEST(Metros, DistinctNamesAndSaneCoordinates) {
  std::set<std::string> names;
  for (const auto* list : {&us_metros(), &kr_metros(), &world_metros()}) {
    for (const auto& metro : *list) {
      EXPECT_GE(metro.location.lat_deg, -60.0);
      EXPECT_LE(metro.location.lat_deg, 72.0);
      EXPECT_GE(metro.location.lon_deg, -180.0);
      EXPECT_LE(metro.location.lon_deg, 180.0);
      names.insert(metro.name);
    }
  }
  EXPECT_GT(names.size(), 30u);
}

class WorldWiringTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new core::World(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static core::World* world_;
};

core::World* WorldWiringTest::world_ = nullptr;

TEST_F(WorldWiringTest, EveryAddressableNodeIsReachableFromVantage) {
  // Transport-level connectivity (firewalls aside) must be total: DNS and
  // HTTP go everywhere.
  auto& topo = world_->topology();
  net::Rng rng(1);
  size_t addressable = 0;
  for (NodeId id = 0; id < topo.node_count(); ++id) {
    if (topo.node(id).ip.is_unspecified()) continue;
    ++addressable;
    EXPECT_TRUE(
        topo.transport_rtt_ms(world_->vantage_node(), id, rng).has_value())
        << topo.node(id).name;
  }
  EXPECT_GT(addressable, 500u);
}

TEST_F(WorldWiringTest, IpUniquenessAcrossTheWorld) {
  auto& topo = world_->topology();
  std::set<uint32_t> seen;
  for (NodeId id = 0; id < topo.node_count(); ++id) {
    const Ipv4Addr ip = topo.node(id).ip;
    if (ip.is_unspecified()) continue;
    EXPECT_TRUE(seen.insert(ip.value()).second)
        << "duplicate " << ip.to_string() << " at " << topo.node(id).name;
  }
}

TEST_F(WorldWiringTest, NearestBackboneIsActuallyNearest) {
  const GeoPoint denver{39.74, -104.99};
  const auto& chosen =
      world_->topology().node(world_->nearest_backbone(denver));
  EXPECT_EQ(chosen.name, "ix-Denver");
}

TEST_F(WorldWiringTest, RegistryCoversAllResolverAddresses) {
  // Every resolver-ish address a client might query must dispatch.
  for (const auto& carrier : world_->carriers()) {
    for (const auto& client : carrier->client_resolvers()) {
      EXPECT_NE(world_->registry().find(client->ip()), nullptr);
    }
    for (const auto& external : carrier->external_resolvers()) {
      EXPECT_NE(world_->registry().find(external->ip()), nullptr);
    }
  }
  EXPECT_NE(world_->registry().find(Ipv4Addr{8, 8, 8, 8}), nullptr);
  EXPECT_NE(world_->registry().find(Ipv4Addr{208, 67, 222, 222}), nullptr);
  EXPECT_NE(world_->registry().find(world_->root_dns_ip()), nullptr);
}

TEST_F(WorldWiringTest, VantageCannotPingSubscriberGateways) {
  // NAT/firewall: carrier-internal hosts are unreachable to probes.
  auto& topo = world_->topology();
  net::Rng rng(2);
  auto& att = world_->carrier(0);
  const PingResult result =
      topo.ping(world_->vantage_node(), att.gateway_node(0), rng);
  EXPECT_FALSE(result.responded);
  EXPECT_EQ(result.failure, PingResult::Failure::kFirewalled);
}

}  // namespace
}  // namespace curtain::net
