// curtain::obs unit tests: metric semantics, histogram bucket edges, the
// virtual-time span tracer (driven by a fake clock) and the exporters.
#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace curtain::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics().reset_for_tests();
    Tracer::instance().clear();
  }
};

TEST_F(ObsTest, CounterIncrementsAndFindOrCreateIsStable) {
  Counter& a = metrics().counter("obs_test_events_total", "help text");
  EXPECT_EQ(a.value(), 0u);
  a.inc();
  a.inc(41);
  EXPECT_EQ(a.value(), 42u);
  // Same name returns the same object; help is first-registration-wins.
  Counter& b = metrics().counter("obs_test_events_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 42u);
}

TEST_F(ObsTest, GaugeMovesBothWays) {
  Gauge& g = metrics().gauge("obs_test_level");
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 5.25);
}

TEST_F(ObsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Histogram& h = metrics().histogram("obs_test_ms", {1.0, 5.0, 10.0});
  // Exactly at an edge lands in that edge's bucket (le semantics).
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (== 1)
  h.observe(1.001); // bucket 1
  h.observe(5.0);   // bucket 1 (== 5)
  h.observe(9.0);   // bucket 2
  h.observe(10.0);  // bucket 2 (== 10)
  h.observe(11.0);  // overflow
  h.observe(1e9);   // overflow
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.count(), 8u);
  // The sum accumulates in fixed point (Histogram::kSumScale units) so
  // that merging per-shard sheaves is associative; each observation is
  // quantized to the nearest 1/kSumScale.
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 5.0 + 9.0 + 10.0 + 11.0 + 1e9,
              8.0 * 0.5 / Histogram::kSumScale);
}

TEST_F(ObsTest, StockBucketLayoutsAreSortedAndUnique) {
  for (const auto& bounds :
       {Histogram::latency_ms_buckets(), Histogram::small_count_buckets()}) {
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST_F(ObsTest, ResetForTestsZeroesValuesButKeepsObjects) {
  Counter& c = metrics().counter("obs_test_reset_total");
  Gauge& g = metrics().gauge("obs_test_reset_gauge");
  Histogram& h = metrics().histogram("obs_test_reset_ms", {1.0});
  c.inc(9);
  g.set(3.0);
  h.observe(0.5);
  metrics().reset_for_tests();
  // Cached references stay valid and read zero.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(&c, &metrics().counter("obs_test_reset_total"));
}

TEST_F(ObsTest, SnapshotCarriesNamesHelpAndValues) {
  metrics().counter("obs_test_snap_total", "a counter").inc(3);
  metrics().gauge("obs_test_snap_gauge").set(1.5);
  metrics().histogram("obs_test_snap_ms", {2.0}).observe(1.0);
  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.counter_value("obs_test_snap_total"), 3u);
  EXPECT_EQ(snap.counter_value("not_registered"), 0u);
  bool saw_histogram = false;
  for (const auto& row : snap.histograms) {
    if (row.name != "obs_test_snap_ms") continue;
    saw_histogram = true;
    ASSERT_EQ(row.buckets.size(), 2u);
    EXPECT_EQ(row.buckets[0], 1u);
    EXPECT_EQ(row.count, 1u);
  }
  EXPECT_TRUE(saw_histogram);
}

// --- Tracer, driven by a fake virtual clock ----------------------------

TEST_F(ObsTest, SpanNestingAndPartition) {
  Tracer& tracer = Tracer::instance();
  double now = 1000.0;  // fake virtual clock, ms
  ASSERT_TRUE(tracer.begin(now));
  EXPECT_FALSE(tracer.begin(now));  // no nested traces

  {
    ScopedSpan access("radio_access", now);
    access.finish(now += 40.0);
  }
  {
    ScopedSpan ldns("ldns", now);
    {
      ScopedSpan recursion("recursion", now);
      {
        ScopedSpan upstream("upstream_query", now);
        upstream.finish(now += 25.0);
      }
      recursion.finish(now += 5.0);
    }
    ldns.finish(now);
  }
  {
    ScopedSpan transport("transport", now);
    transport.finish(now += 30.0);
  }

  const ResolutionTrace trace = tracer.end(now);
  ASSERT_EQ(trace.spans.size(), 5u);
  EXPECT_STREQ(trace.spans[0].name, "radio_access");
  EXPECT_EQ(trace.spans[0].depth, 0);
  EXPECT_DOUBLE_EQ(trace.spans[0].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(trace.spans[0].duration_ms, 40.0);
  EXPECT_STREQ(trace.spans[1].name, "ldns");
  EXPECT_EQ(trace.spans[1].depth, 0);
  EXPECT_STREQ(trace.spans[2].name, "recursion");
  EXPECT_EQ(trace.spans[2].depth, 1);
  EXPECT_STREQ(trace.spans[3].name, "upstream_query");
  EXPECT_EQ(trace.spans[3].depth, 2);
  EXPECT_DOUBLE_EQ(trace.spans[3].duration_ms, 25.0);
  EXPECT_STREQ(trace.spans[4].name, "transport");
  EXPECT_EQ(trace.spans[4].depth, 0);
  EXPECT_DOUBLE_EQ(trace.spans[4].duration_ms, 30.0);
  // Depth-0 spans partition the whole trace.
  EXPECT_DOUBLE_EQ(trace.total_ms, 100.0);
  EXPECT_DOUBLE_EQ(trace.top_level_ms(), trace.total_ms);
  EXPECT_FALSE(trace.render().empty());
}

TEST_F(ObsTest, SpansAreNoOpsWithoutAnActiveTrace) {
  Tracer& tracer = Tracer::instance();
  {
    ScopedSpan orphan("orphan", 0.0);
    orphan.finish(10.0);
  }
  EXPECT_TRUE(tracer.recent().empty());
  ASSERT_TRUE(tracer.begin(0.0));
  const ResolutionTrace trace = tracer.end(5.0);
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_DOUBLE_EQ(trace.total_ms, 5.0);
}

TEST_F(ObsTest, PauseSuppressesSpanCapture) {
  Tracer& tracer = Tracer::instance();
  ASSERT_TRUE(tracer.begin(0.0));
  tracer.pause();
  {
    ScopedSpan shadow("warm_shadow", 0.0);
    shadow.finish(50.0);
  }
  tracer.resume();
  {
    ScopedSpan real("real_work", 0.0);
    real.finish(10.0);
  }
  const ResolutionTrace trace = tracer.end(10.0);
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_STREQ(trace.spans[0].name, "real_work");
}

TEST_F(ObsTest, AbandonedSpansCloseZeroDuration) {
  Tracer& tracer = Tracer::instance();
  ASSERT_TRUE(tracer.begin(0.0));
  {
    ScopedSpan dropped("early_return", 2.0);
    // No finish(): destructor closes it at its start.
  }
  const int left_open = tracer.open_span("left_open", 3.0);
  (void)left_open;
  const ResolutionTrace trace = tracer.end(9.0);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.spans[0].duration_ms, 0.0);
  EXPECT_DOUBLE_EQ(trace.spans[1].duration_ms, 0.0);
  EXPECT_DOUBLE_EQ(trace.total_ms, 9.0);
}

TEST_F(ObsTest, RingKeepsLastTracesOldestFirst) {
  Tracer& tracer = Tracer::instance();
  tracer.set_ring_capacity(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tracer.begin(0.0));
    tracer.end(static_cast<double>(i));
  }
  const auto recent = tracer.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent[0].total_ms, 2.0);
  EXPECT_DOUBLE_EQ(recent[1].total_ms, 3.0);
  EXPECT_DOUBLE_EQ(recent[2].total_ms, 4.0);
  tracer.set_ring_capacity(256);  // restore the default for other tests
}

// --- Exporters ---------------------------------------------------------

TEST_F(ObsTest, PrometheusTextFormat) {
  metrics().counter("obs_test_prom_total", "events seen").inc(5);
  metrics().gauge("obs_test_prom_gauge").set(2.5);
  Histogram& h = metrics().histogram("obs_test_prom_ms", {1.0, 10.0}, "lat");
  h.observe(0.5);
  h.observe(0.7);
  h.observe(4.0);
  h.observe(99.0);
  const std::string text = to_prometheus_text(metrics().snapshot());
  EXPECT_NE(text.find("# HELP obs_test_prom_total events seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_gauge 2.5\n"), std::string::npos);
  // Histogram buckets are cumulative and +Inf equals the count.
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_count 4\n"), std::string::npos);
}

TEST_F(ObsTest, JsonExportIncludesReport) {
  metrics().counter("obs_test_json_total").inc(2);
  RunReport report;
  report.add_phase("campaign", 812.5);
  report.add_total("experiments", 42);
  const std::string json = to_json(metrics().snapshot(), &report);
  EXPECT_NE(json.find("\"obs_test_json_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"campaign\", \"wall_ms\": 812.5}"),
            std::string::npos);
  EXPECT_NE(json.find("\"experiments\": 42"), std::string::npos);
  // Without a report the key is absent entirely.
  EXPECT_EQ(to_json(metrics().snapshot()).find("\"report\""),
            std::string::npos);
}

TEST_F(ObsTest, RunReportRendering) {
  RunReport report;
  EXPECT_TRUE(report.empty());
  report.add_phase("world_build", 100.0);
  report.add_phase("campaign", 900.0);
  report.add_total("resolutions", 123456);
  EXPECT_FALSE(report.empty());
  EXPECT_DOUBLE_EQ(report.wall_ms_total(), 1000.0);
  const std::string suffix = report.summary_suffix();
  EXPECT_NE(suffix.find("world_build"), std::string::npos);
  EXPECT_NE(suffix.find("campaign"), std::string::npos);
  EXPECT_NE(report.render().find("resolutions"), std::string::npos);
}

}  // namespace
}  // namespace curtain::obs
