// curtain::obs unit tests: metric semantics, histogram bucket edges, the
// virtual-time span tracer (driven by a fake clock), the exporters and
// the campaign flight recorder.
#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace curtain::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics().reset_for_tests();
    Tracer::instance().clear();
  }
};

TEST_F(ObsTest, CounterIncrementsAndFindOrCreateIsStable) {
  Counter& a = metrics().counter("obs_test_events_total", "help text");
  EXPECT_EQ(a.value(), 0u);
  a.inc();
  a.inc(41);
  EXPECT_EQ(a.value(), 42u);
  // Same name returns the same object; help is first-registration-wins.
  Counter& b = metrics().counter("obs_test_events_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 42u);
}

TEST_F(ObsTest, GaugeMovesBothWays) {
  Gauge& g = metrics().gauge("obs_test_level");
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 5.25);
}

TEST_F(ObsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  Histogram& h = metrics().histogram("obs_test_ms", {1.0, 5.0, 10.0});
  // Exactly at an edge lands in that edge's bucket (le semantics).
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (== 1)
  h.observe(1.001); // bucket 1
  h.observe(5.0);   // bucket 1 (== 5)
  h.observe(9.0);   // bucket 2
  h.observe(10.0);  // bucket 2 (== 10)
  h.observe(11.0);  // overflow
  h.observe(1e9);   // overflow
  ASSERT_EQ(h.num_buckets(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.count(), 8u);
  // The sum accumulates in fixed point (Histogram::kSumScale units) so
  // that merging per-shard sheaves is associative; each observation is
  // quantized to the nearest 1/kSumScale.
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.001 + 5.0 + 9.0 + 10.0 + 11.0 + 1e9,
              8.0 * 0.5 / Histogram::kSumScale);
}

TEST_F(ObsTest, StockBucketLayoutsAreSortedAndUnique) {
  for (const auto& bounds :
       {Histogram::latency_ms_buckets(), Histogram::small_count_buckets()}) {
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST_F(ObsTest, ResetForTestsZeroesValuesButKeepsObjects) {
  Counter& c = metrics().counter("obs_test_reset_total");
  Gauge& g = metrics().gauge("obs_test_reset_gauge");
  Histogram& h = metrics().histogram("obs_test_reset_ms", {1.0});
  c.inc(9);
  g.set(3.0);
  h.observe(0.5);
  metrics().reset_for_tests();
  // Cached references stay valid and read zero.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket(0), 0u);
  EXPECT_EQ(&c, &metrics().counter("obs_test_reset_total"));
}

TEST_F(ObsTest, SnapshotCarriesNamesHelpAndValues) {
  metrics().counter("obs_test_snap_total", "a counter").inc(3);
  metrics().gauge("obs_test_snap_gauge").set(1.5);
  metrics().histogram("obs_test_snap_ms", {2.0}).observe(1.0);
  const MetricsSnapshot snap = metrics().snapshot();
  EXPECT_EQ(snap.counter_value("obs_test_snap_total"), 3u);
  EXPECT_EQ(snap.counter_value("not_registered"), 0u);
  bool saw_histogram = false;
  for (const auto& row : snap.histograms) {
    if (row.name != "obs_test_snap_ms") continue;
    saw_histogram = true;
    ASSERT_EQ(row.buckets.size(), 2u);
    EXPECT_EQ(row.buckets[0], 1u);
    EXPECT_EQ(row.count, 1u);
  }
  EXPECT_TRUE(saw_histogram);
}

// --- Tracer, driven by a fake virtual clock ----------------------------

TEST_F(ObsTest, SpanNestingAndPartition) {
  Tracer& tracer = Tracer::instance();
  double now = 1000.0;  // fake virtual clock, ms
  ASSERT_TRUE(tracer.begin(now));
  EXPECT_FALSE(tracer.begin(now));  // no nested traces

  {
    ScopedSpan access("radio_access", now);
    access.finish(now += 40.0);
  }
  {
    ScopedSpan ldns("ldns", now);
    {
      ScopedSpan recursion("recursion", now);
      {
        ScopedSpan upstream("upstream_query", now);
        upstream.finish(now += 25.0);
      }
      recursion.finish(now += 5.0);
    }
    ldns.finish(now);
  }
  {
    ScopedSpan transport("transport", now);
    transport.finish(now += 30.0);
  }

  const ResolutionTrace trace = tracer.end(now);
  ASSERT_EQ(trace.spans.size(), 5u);
  EXPECT_STREQ(trace.spans[0].name, "radio_access");
  EXPECT_EQ(trace.spans[0].depth, 0);
  EXPECT_DOUBLE_EQ(trace.spans[0].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(trace.spans[0].duration_ms, 40.0);
  EXPECT_STREQ(trace.spans[1].name, "ldns");
  EXPECT_EQ(trace.spans[1].depth, 0);
  EXPECT_STREQ(trace.spans[2].name, "recursion");
  EXPECT_EQ(trace.spans[2].depth, 1);
  EXPECT_STREQ(trace.spans[3].name, "upstream_query");
  EXPECT_EQ(trace.spans[3].depth, 2);
  EXPECT_DOUBLE_EQ(trace.spans[3].duration_ms, 25.0);
  EXPECT_STREQ(trace.spans[4].name, "transport");
  EXPECT_EQ(trace.spans[4].depth, 0);
  EXPECT_DOUBLE_EQ(trace.spans[4].duration_ms, 30.0);
  // Depth-0 spans partition the whole trace.
  EXPECT_DOUBLE_EQ(trace.total_ms, 100.0);
  EXPECT_DOUBLE_EQ(trace.top_level_ms(), trace.total_ms);
  EXPECT_FALSE(trace.render().empty());
}

TEST_F(ObsTest, SpansAreNoOpsWithoutAnActiveTrace) {
  Tracer& tracer = Tracer::instance();
  {
    ScopedSpan orphan("orphan", 0.0);
    orphan.finish(10.0);
  }
  EXPECT_TRUE(tracer.recent().empty());
  ASSERT_TRUE(tracer.begin(0.0));
  const ResolutionTrace trace = tracer.end(5.0);
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_DOUBLE_EQ(trace.total_ms, 5.0);
}

TEST_F(ObsTest, PauseSuppressesSpanCapture) {
  Tracer& tracer = Tracer::instance();
  ASSERT_TRUE(tracer.begin(0.0));
  tracer.pause();
  {
    ScopedSpan shadow("warm_shadow", 0.0);
    shadow.finish(50.0);
  }
  tracer.resume();
  {
    ScopedSpan real("real_work", 0.0);
    real.finish(10.0);
  }
  const ResolutionTrace trace = tracer.end(10.0);
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_STREQ(trace.spans[0].name, "real_work");
}

TEST_F(ObsTest, AbandonedSpansCloseZeroDuration) {
  Tracer& tracer = Tracer::instance();
  ASSERT_TRUE(tracer.begin(0.0));
  {
    ScopedSpan dropped("early_return", 2.0);
    // No finish(): destructor closes it at its start.
  }
  const int left_open = tracer.open_span("left_open", 3.0);
  (void)left_open;
  const ResolutionTrace trace = tracer.end(9.0);
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.spans[0].duration_ms, 0.0);
  EXPECT_DOUBLE_EQ(trace.spans[1].duration_ms, 0.0);
  EXPECT_DOUBLE_EQ(trace.total_ms, 9.0);
}

TEST_F(ObsTest, RingKeepsLastTracesOldestFirst) {
  Tracer& tracer = Tracer::instance();
  tracer.set_ring_capacity(3);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tracer.begin(0.0));
    tracer.end(static_cast<double>(i));
  }
  const auto recent = tracer.recent();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_DOUBLE_EQ(recent[0].total_ms, 2.0);
  EXPECT_DOUBLE_EQ(recent[1].total_ms, 3.0);
  EXPECT_DOUBLE_EQ(recent[2].total_ms, 4.0);
  tracer.set_ring_capacity(256);  // restore the default for other tests
}

// --- Exporters ---------------------------------------------------------

TEST_F(ObsTest, PrometheusTextFormat) {
  metrics().counter("obs_test_prom_total", "events seen").inc(5);
  metrics().gauge("obs_test_prom_gauge").set(2.5);
  Histogram& h = metrics().histogram("obs_test_prom_ms", {1.0, 10.0}, "lat");
  h.observe(0.5);
  h.observe(0.7);
  h.observe(4.0);
  h.observe(99.0);
  const std::string text = to_prometheus_text(metrics().snapshot());
  EXPECT_NE(text.find("# HELP obs_test_prom_total events seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_prom_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_total 5\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_gauge 2.5\n"), std::string::npos);
  // Histogram buckets are cumulative and +Inf equals the count.
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"10\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_ms_count 4\n"), std::string::npos);
}

TEST_F(ObsTest, JsonExportIncludesReport) {
  metrics().counter("obs_test_json_total").inc(2);
  RunReport report;
  report.add_phase("campaign", 812.5);
  report.add_total("experiments", 42);
  const std::string json = to_json(metrics().snapshot(), &report);
  EXPECT_NE(json.find("\"obs_test_json_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"campaign\", \"wall_ms\": 812.5}"),
            std::string::npos);
  EXPECT_NE(json.find("\"experiments\": 42"), std::string::npos);
  // Without a report the key is absent entirely.
  EXPECT_EQ(to_json(metrics().snapshot()).find("\"report\""),
            std::string::npos);
}

TEST_F(ObsTest, RunReportRendering) {
  RunReport report;
  EXPECT_TRUE(report.empty());
  report.add_phase("world_build", 100.0);
  report.add_phase("campaign", 900.0);
  report.add_total("resolutions", 123456);
  EXPECT_FALSE(report.empty());
  EXPECT_DOUBLE_EQ(report.wall_ms_total(), 1000.0);
  const std::string suffix = report.summary_suffix();
  EXPECT_NE(suffix.find("world_build"), std::string::npos);
  EXPECT_NE(suffix.find("campaign"), std::string::npos);
  EXPECT_NE(report.render().find("resolutions"), std::string::npos);
}

TEST_F(ObsTest, PrometheusLabelEscaping) {
  // Exposition-format label values escape backslash, quote and newline.
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_escape_label("two\nlines"), "two\\nlines");
  EXPECT_EQ(prometheus_escape_label("\\\"\n"), "\\\\\\\"\\n");
}

TEST_F(ObsTest, PrometheusHelpEscaping) {
  // HELP text escapes backslash and newline but not quotes (quotes are
  // legal in HELP, unlike in label values).
  EXPECT_EQ(prometheus_escape_help("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_help("two\nlines"), "two\\nlines");
  EXPECT_EQ(prometheus_escape_help("say \"hi\""), "say \"hi\"");
}

TEST_F(ObsTest, PrometheusEscapesReachTheRenderedText) {
  metrics().counter("obs_test_escape_total", "line one\nline \\two").inc();
  const std::string text = to_prometheus_text(metrics().snapshot());
  EXPECT_NE(
      text.find("# HELP obs_test_escape_total line one\\nline \\\\two\n"),
      std::string::npos)
      << text;
}

TEST_F(ObsTest, HistogramFixedPointSumRoundTripsExactly) {
  // Every value that is an exact multiple of 1/kSumScale must survive the
  // fixed-point accumulation bit-exactly (kSumScale is a power of two).
  Histogram& h = metrics().histogram("obs_test_fixed_ms", {10.0});
  const double quantum = 1.0 / Histogram::kSumScale;
  h.observe(0.5);
  h.observe(1.25);
  h.observe(3.0 + quantum);
  h.observe(quantum);
  EXPECT_EQ(h.sum(), 0.5 + 1.25 + 3.0 + quantum + quantum);
}

TEST_F(ObsTest, HistogramMergeRegroupingIsExact) {
  // Associativity of the fixed-point sum: observing {a,b,c,d} in one
  // histogram equals observing {a,b} and {c,d} in two and merging — the
  // property the shard-sheaf merge relies on for byte-identical exports.
  const std::vector<double> bounds = {1.0, 10.0};
  Histogram& whole = metrics().histogram("obs_test_whole_ms", bounds);
  Histogram& part1 = metrics().histogram("obs_test_part1_ms", bounds);
  Histogram& part2 = metrics().histogram("obs_test_part2_ms", bounds);
  Histogram& merged = metrics().histogram("obs_test_merged_ms", bounds);
  const double values[] = {0.25, 0.75, 2.5, 1e6 + 0.5};
  for (const double v : values) whole.observe(v);
  part1.observe(values[0]);
  part1.observe(values[1]);
  part2.observe(values[2]);
  part2.observe(values[3]);
  for (Histogram* part : {&part1, &part2}) {
    std::vector<uint64_t> buckets;
    for (size_t i = 0; i < part->num_buckets(); ++i) {
      buckets.push_back(part->bucket(i));
    }
    merged.merge_counts(buckets, part->count(), part->sum());
  }
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.sum(), whole.sum());  // bit-exact, not NEAR
  for (size_t i = 0; i < whole.num_buckets(); ++i) {
    EXPECT_EQ(merged.bucket(i), whole.bucket(i)) << "bucket " << i;
  }
}

// --- Flight recorder ---------------------------------------------------

class FlightRecorderTest : public ObsTest {
 protected:
  void TearDown() override {
    FlightRecorder::instance().disable();
    FlightRecorder::instance().clear();
  }

  static std::vector<FlightRecorder::ShardMeta> two_shards() {
    return {{"carrierA/cohort0", 0, 0, 12}, {"carrierB/cohort0", 1, 0, 3}};
  }
};

TEST_F(FlightRecorderTest, DisabledRecorderIgnoresRecords) {
  FlightRecorder& recorder = FlightRecorder::instance();
  ASSERT_FALSE(recorder.enabled());
  recorder.record_phase(0, "ghost", 0, 10);
  recorder.record_counter(0, "ghost_c", 5, 1.0);
  recorder.record_shard(1, 0, 0, 10, 0, 0.0, 0, 0);
  const FlightRecorder::Dump dump = recorder.dump();
  EXPECT_EQ(dump.records.size(), 0u);
  EXPECT_EQ(dump.worker_lanes, 0u);
}

TEST_F(FlightRecorderTest, DumpMergesLanesSortedByStart) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.enable();
  ASSERT_TRUE(recorder.enabled());
  EXPECT_GE(recorder.now_us(), 0);
  recorder.begin_run(2, two_shards());
  // Interleave records across lanes, appended out of timeline order.
  recorder.record_shard(/*worker_lane=*/2, /*shard_index=*/1,
                        /*pickup_us=*/50, /*finish_us=*/90,
                        /*queue_wait_us=*/50, /*queue_depth=*/0.0,
                        /*rss_bytes=*/1 << 20, /*dataset_bytes=*/512);
  recorder.record_shard(1, 0, 10, 80, 10, 1.0, 1 << 20, 4096);
  recorder.record_phase(0, "merge_datasets", 95, 99);
  recorder.record_counter(0, "rss_mb", 99, 64.0);
  const FlightRecorder::Dump dump = recorder.dump();
  EXPECT_EQ(dump.worker_lanes, 2u);
  ASSERT_EQ(dump.shards.size(), 2u);
  EXPECT_EQ(dump.shards[0].label, "carrierA/cohort0");
  // Each record_shard appends the span plus queue-depth and RSS counter
  // samples at finish: 2×3 + the phase + the explicit counter.
  ASSERT_EQ(dump.records.size(), 8u);
  // Sorted by start time regardless of append order.
  EXPECT_EQ(dump.records[0].start_us, 10);
  EXPECT_EQ(dump.records[0].worker, 1);
  EXPECT_EQ(dump.records[0].kind, ExecRecord::Kind::kShardSpan);
  EXPECT_EQ(dump.records[1].start_us, 50);
  EXPECT_EQ(dump.records[1].shard_index, 1);
  for (size_t i = 2; i < 6; ++i) {
    EXPECT_EQ(dump.records[i].kind, ExecRecord::Kind::kCounter) << i;
  }
  EXPECT_EQ(dump.records[6].kind, ExecRecord::Kind::kPhaseSpan);
  EXPECT_STREQ(dump.records[6].name, "merge_datasets");
  EXPECT_EQ(dump.records[7].kind, ExecRecord::Kind::kCounter);
  EXPECT_DOUBLE_EQ(dump.records[7].value, 64.0);
  recorder.clear();
  EXPECT_EQ(recorder.dump().records.size(), 0u);
}

FlightRecorder::Dump synthetic_dump() {
  // Two workers over four shards; worker 1 runs shards 0 and 2, worker 2
  // runs shards 1 and 3. Shard 3 is a 10× outlier the watchdog must flag.
  FlightRecorder::Dump dump;
  dump.worker_lanes = 2;
  dump.shards = {{"A/cohort0", 0, 0, 10},
                 {"B/cohort0", 1, 0, 10},
                 {"A/cohort1", 0, 1, 10},
                 {"B/cohort1", 1, 1, 10}};
  auto shard = [](uint16_t worker, int32_t index, int64_t start, int64_t end,
                  int64_t wait) {
    ExecRecord r;
    r.kind = ExecRecord::Kind::kShardSpan;
    r.worker = worker;
    r.shard_index = index;
    r.start_us = start;
    r.end_us = end;
    r.queue_wait_us = wait;
    return r;
  };
  dump.records.push_back(shard(1, 0, 0, 10'000, 0));
  dump.records.push_back(shard(2, 1, 0, 20'000, 0));
  dump.records.push_back(shard(1, 2, 10'000, 20'000, 10'000));
  dump.records.push_back(shard(2, 3, 20'000, 120'000, 20'000));
  return dump;
}

TEST_F(FlightRecorderTest, BuildProfileComputesWaitsUtilizationAndStalls) {
  const RunReport::Profile profile =
      build_profile(synthetic_dump(), /*stall_factor=*/4.0,
                    /*peak_rss_bytes=*/256u << 20);
  EXPECT_TRUE(profile.enabled);
  ASSERT_EQ(profile.shards.size(), 4u);
  EXPECT_EQ(profile.shards[0].label, "A/cohort0");
  EXPECT_EQ(profile.shards[0].worker, 1);
  EXPECT_DOUBLE_EQ(profile.shards[0].wall_ms, 10.0);
  EXPECT_DOUBLE_EQ(profile.shards[3].queue_wait_ms, 20.0);
  // Shard walls are {10, 20, 10, 100} ms: the nearest-rank median is 10,
  // so only the 100 ms shard exceeds 4× median.
  EXPECT_DOUBLE_EQ(profile.median_shard_wall_ms, 10.0);
  EXPECT_FALSE(profile.shards[0].stalled);
  EXPECT_FALSE(profile.shards[1].stalled);
  EXPECT_TRUE(profile.shards[3].stalled);
  EXPECT_EQ(profile.stalled_labels(),
            std::vector<std::string>{"B/cohort1"});
  // Busy 140 ms over a 120 ms makespan on 2 workers: 140/240.
  EXPECT_NEAR(profile.worker_utilization_pct, 100.0 * 140.0 / 240.0, 1e-9);
  // Queue waits {0, 0, 10, 20} ms, nearest-rank percentiles.
  EXPECT_DOUBLE_EQ(profile.queue_wait_p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(profile.queue_wait_p95_ms, 20.0);
  EXPECT_DOUBLE_EQ(profile.peak_rss_mb, 256.0);
  EXPECT_DOUBLE_EQ(profile.stall_factor, 4.0);
}

TEST_F(FlightRecorderTest, ChromeTraceCarriesLanesSpansAndCounters) {
  FlightRecorder::Dump dump = synthetic_dump();
  ExecRecord counter;
  counter.kind = ExecRecord::Kind::kCounter;
  counter.worker = 1;
  counter.start_us = counter.end_us = 15'000;
  counter.value = 33.5;
  std::snprintf(counter.name, sizeof(counter.name), "rss_mb");
  dump.records.push_back(counter);

  const std::string trace = to_chrome_trace(dump);
  // Lane metadata for the coordinator and both workers.
  EXPECT_NE(trace.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker 1\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker 2\""), std::string::npos);
  // Shard spans are labelled and carry their metadata args.
  EXPECT_NE(trace.find("\"name\": \"A/cohort0\""), std::string::npos);
  EXPECT_NE(trace.find("\"devices\": 10"), std::string::npos);
  // Counter samples are pinned to the coordinator track.
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"rss_mb\": 33.5"), std::string::npos);
  // The document closes with the run geometry.
  EXPECT_NE(trace.find("\"otherData\": {\"workers\": 2, \"shards\": 4}"),
            std::string::npos);
}

TEST_F(FlightRecorderTest, ReportAndJsonCarryConfigAndProfile) {
  RunReport report;
  report.add_phase("campaign", 120.0);
  report.config.workers = 2;
  report.config.cohorts = 2;
  report.config.shards = 4;
  report.profile = build_profile(synthetic_dump(), 4.0, 64u << 20);
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("workers=2"), std::string::npos);
  EXPECT_NE(rendered.find("B/cohort1"), std::string::npos);
  EXPECT_NE(rendered.find("STALLED"), std::string::npos);
  const std::string json = to_json(metrics().snapshot(), &report);
  EXPECT_NE(json.find("\"config\": {\"workers\": 2, \"cohorts\": 2, "
                      "\"shards\": 4}"),
            std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_p95_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled\": true"), std::string::npos);
}

TEST_F(FlightRecorderTest, RssProbesReportPlausibleValues) {
  // /proc/self/status (or the getrusage fallback) must yield nonzero,
  // ordered readings on any platform the suite runs on.
  const size_t current = read_current_rss_bytes();
  const size_t peak = read_peak_rss_bytes();
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current / 2);  // peak may lag current only by page noise
  EXPECT_GT(peak, 1u << 20);     // a test binary is at least a megabyte
}

}  // namespace
}  // namespace curtain::obs
