#include <gtest/gtest.h>

#include "core/world.h"
#include "measure/pageload.h"

namespace curtain::measure {
namespace {

class PageLoadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new core::World(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static core::World* world_;
  net::Rng rng_{808};

  net::Ipv4Addr a_replica() {
    return world_->cdn("curtaincdn").clusters().front().replica_ips[0];
  }
  ProbeOrigin wired_origin() {
    return ProbeOrigin{world_->vantage_node(), world_->vantage_ip(), 0.0};
  }
};

core::World* PageLoadTest::world_ = nullptr;

TEST_F(PageLoadTest, DownlinkOrderedByGeneration) {
  EXPECT_GT(downlink_mbps(cellular::RadioTech::kLte),
            downlink_mbps(cellular::RadioTech::kHspap));
  EXPECT_GT(downlink_mbps(cellular::RadioTech::kHspap),
            downlink_mbps(cellular::RadioTech::kUmts));
  EXPECT_GT(downlink_mbps(cellular::RadioTech::kUmts),
            downlink_mbps(cellular::RadioTech::kGprs));
}

TEST_F(PageLoadTest, LoadCompletesAndDecomposes) {
  PageLoadEstimator plt(measure::WorldView{world_->topology(), world_->registry()});
  const auto outcome =
      plt.load(wired_origin(), a_replica(), cellular::RadioTech::kLte, 40.0,
               PageSpec::mobile_default(), net::SimTime::zero(), rng_);
  ASSERT_TRUE(outcome.completed);
  // 28 objects over 6 connections = 5 waves.
  EXPECT_EQ(outcome.waves, 5);
  EXPECT_GT(outcome.plt_ms, 40.0);              // at least the DNS share
  EXPECT_GT(outcome.plt_ms, outcome.transfer_ms);  // RTTs add on top
}

TEST_F(PageLoadTest, SlowerRadioSlowerPage) {
  PageLoadEstimator plt(measure::WorldView{world_->topology(), world_->registry()});
  const auto page = PageSpec::mobile_default();
  double lte_sum = 0.0;
  double g2_sum = 0.0;
  for (int i = 0; i < 20; ++i) {
    lte_sum += plt.load(wired_origin(), a_replica(), cellular::RadioTech::kLte,
                        40.0, page, net::SimTime::zero(), rng_)
                   .plt_ms;
    g2_sum += plt.load(wired_origin(), a_replica(), cellular::RadioTech::kGprs,
                       40.0, page, net::SimTime::zero(), rng_)
                  .plt_ms;
  }
  EXPECT_GT(g2_sum, lte_sum * 5.0);  // 2G transfers dominate everything
}

TEST_F(PageLoadTest, FartherReplicaSlowerPage) {
  PageLoadEstimator plt(measure::WorldView{world_->topology(), world_->registry()});
  const auto& provider = world_->cdn("curtaincdn");
  // Vantage is near Chicago; compare the Chicago cluster vs Seoul.
  const auto& near = provider.nearest_cluster({42.05, -87.68}, "US");
  const auto& far = provider.nearest_cluster({37.57, 126.98}, "KR");
  double near_sum = 0.0;
  double far_sum = 0.0;
  for (int i = 0; i < 10; ++i) {
    near_sum += plt.load(wired_origin(), near.replica_ips[0],
                         cellular::RadioTech::kLte, 40.0,
                         PageSpec::mobile_default(), net::SimTime::zero(), rng_)
                    .plt_ms;
    far_sum += plt.load(wired_origin(), far.replica_ips[0],
                        cellular::RadioTech::kLte, 40.0,
                        PageSpec::mobile_default(), net::SimTime::zero(), rng_)
                   .plt_ms;
  }
  // 6 request waves each paying a trans-Pacific RTT add up.
  EXPECT_GT(far_sum / 10.0, near_sum / 10.0 + 500.0);
}

TEST_F(PageLoadTest, UnknownReplicaFails) {
  PageLoadEstimator plt(measure::WorldView{world_->topology(), world_->registry()});
  const auto outcome =
      plt.load(wired_origin(), net::Ipv4Addr{203, 0, 113, 222},
               cellular::RadioTech::kLte, 40.0, PageSpec::mobile_default(),
               net::SimTime::zero(), rng_);
  EXPECT_FALSE(outcome.completed);
  EXPECT_DOUBLE_EQ(outcome.plt_ms, 0.0);
}

TEST_F(PageLoadTest, MoreObjectsMoreWaves) {
  PageLoadEstimator plt(measure::WorldView{world_->topology(), world_->registry()});
  PageSpec heavy;
  heavy.num_objects = 60;
  const auto outcome =
      plt.load(wired_origin(), a_replica(), cellular::RadioTech::kLte, 40.0,
               heavy, net::SimTime::zero(), rng_);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.waves, 10);
}

}  // namespace
}  // namespace curtain::measure
