#include <gtest/gtest.h>

#include <set>

#include "core/world.h"
#include "dns/stub.h"

namespace curtain::publicdns {
namespace {

class PublicDnsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new core::World(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static core::World* world_;
  net::Rng rng_{4242};
};

core::World* PublicDnsTest::world_ = nullptr;

TEST_F(PublicDnsTest, GoogleHasThirtyDistinctSlash24Sites) {
  const auto& sites = world_->google_dns().sites();
  ASSERT_EQ(sites.size(), 30u);  // paper §6.1
  std::set<uint32_t> prefixes;
  for (const auto& site : sites) {
    prefixes.insert(site.prefix.address().value());
    for (const auto& instance : site.instances) {
      EXPECT_TRUE(site.prefix.contains(instance->ip()));
    }
  }
  EXPECT_EQ(prefixes.size(), 30u);
}

TEST_F(PublicDnsTest, OpenDnsSmaller) {
  EXPECT_EQ(world_->open_dns().sites().size(), 20u);
}

TEST_F(PublicDnsTest, VipRegisteredInRegistry) {
  EXPECT_EQ(world_->registry().find(net::Ipv4Addr(8, 8, 8, 8)),
            &world_->google_dns());
  EXPECT_EQ(world_->registry().find(net::Ipv4Addr(208, 67, 222, 222)),
            &world_->open_dns());
}

TEST_F(PublicDnsTest, AnycastRoutesNearEgress) {
  // A subscriber behind an AT&T gateway should land on a site within a
  // continental distance of that gateway.
  auto& att = world_->carrier(0);
  const net::Ipv4Addr src = att.assign_ip(0, rng_);
  const auto& gateway_node = world_->topology().node(att.gateway_node(0));
  const net::NodeId site_node =
      world_->google_dns().node_for(src, net::SimTime::zero());
  const auto& site = world_->topology().node(site_node);
  EXPECT_LT(net::distance_km(gateway_node.location, site.location), 4500.0);
}

TEST_F(PublicDnsTest, IngressStableWithinEpoch) {
  auto& att = world_->carrier(0);
  const net::Ipv4Addr src = att.assign_ip(1, rng_);
  const auto t = net::SimTime::from_hours(3.0);
  const net::NodeId a = world_->google_dns().node_for(src, t);
  const net::NodeId b = world_->google_dns().node_for(
      src, t + net::SimTime::from_seconds(30));
  EXPECT_EQ(a, b);
}

TEST_F(PublicDnsTest, IngressDriftsAcrossEpochs) {
  // Over many ingress epochs a prefix visits several sites (Fig. 12).
  auto& att = world_->carrier(0);
  const net::Ipv4Addr src = att.assign_ip(2, rng_);
  std::set<net::NodeId> sites;
  for (int day = 0; day < 60; ++day) {
    sites.insert(
        world_->google_dns().node_for(src, net::SimTime::from_days(day)));
  }
  EXPECT_GT(sites.size(), 1u);
  EXPECT_LE(sites.size(), 4u);  // flips among the nearest few only
}

TEST_F(PublicDnsTest, ResolvesStudyDomainEndToEnd) {
  auto& att = world_->carrier(0);
  const net::Ipv4Addr src = att.assign_ip(3, rng_);
  dns::StubResolver stub(att.gateway_node(0), src, world_->topology(),
                         world_->registry());
  const auto result =
      stub.query(net::Ipv4Addr{8, 8, 8, 8}, *dns::DnsName::parse("m.yelp.com"),
                 dns::RRType::kA, net::SimTime::zero(), rng_);
  EXPECT_TRUE(result.responded);
  EXPECT_EQ(result.rcode, dns::Rcode::kNoError);
  EXPECT_FALSE(result.addresses().empty());
  EXPECT_GT(result.total_ms, 0.0);
}

TEST_F(PublicDnsTest, InstancesSpreadWithinSite) {
  // Repeated queries from one source should be served by several instance
  // IPs of the same site (Table 5: many IPs, few /24s).
  auto& att = world_->carrier(0);
  const net::Ipv4Addr src = att.assign_ip(4, rng_);
  const auto query = dns::encode(dns::Message::query(
      9, *dns::DnsName::parse("www.bing.com"), dns::RRType::kA));
  // Count distinct instances by asking the service repeatedly and watching
  // which resolver the research ADNS would see; here we instead count the
  // cache spread indirectly via instance selection determinism — use the
  // public service's handle_query with a fixed time and confirm it succeeds.
  for (int i = 0; i < 5; ++i) {
    const auto served = world_->google_dns().handle_query(
        query, src, net::SimTime::from_seconds(i), rng_);
    const auto response = dns::decode(served.wire);
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->header.rcode, dns::Rcode::kNoError);
  }
}

}  // namespace
}  // namespace curtain::publicdns
