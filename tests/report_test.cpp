#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.h"
#include "core/study.h"

namespace curtain::analysis {
namespace {

TEST(Report, GeneratesAllSections) {
  const core::Scenario scenario =
      core::Scenario::paper_2014().with_seed(99).with_scale(0.003);
  core::Study study(scenario);
  study.run();

  std::ostringstream out;
  ReportConfig report_config;
  report_config.scale = scenario.scale;
  report_config.seed = scenario.seed;
  write_report(study.records(), report_config, out);
  const std::string text = out.str();

  for (const char* needle :
       {"# EXPERIMENTS", "Table 1", "Table 2", "Figure 2", "Figure 3",
        "Table 3", "Figure 4", "Figures 5/6", "Figure 7", "Table 4",
        "Figures 8/9", "Figure 10", "Section 5.2", "Table 5", "Figure 11",
        "Figure 12", "Figure 13", "Figure 14", "Measured headline"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // Every carrier appears.
  for (const char* carrier :
       {"AT&T", "Sprint", "T-Mobile", "Verizon", "SK Telecom", "LG U+"}) {
    EXPECT_NE(text.find(carrier), std::string::npos) << carrier;
  }
  // Markdown tables are well-formed (every table row starts and ends with |).
  size_t table_rows = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.front() == '|') {
      EXPECT_EQ(line.back(), '|') << line;
      ++table_rows;
    }
  }
  EXPECT_GT(table_rows, 60u);
}

}  // namespace
}  // namespace curtain::analysis
