#include <gtest/gtest.h>

#include "core/world.h"
#include "dns/resolver.h"
#include "dns/reverse.h"
#include "util/strings.h"

namespace curtain::dns {
namespace {

TEST(ReverseName, RoundTrip) {
  const net::Ipv4Addr address{192, 0, 2, 77};
  const DnsName reverse = reverse_name(address);
  EXPECT_EQ(reverse.to_string(), "77.2.0.192.in-addr.arpa");
  const auto parsed = parse_reverse_name(reverse);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, address);
}

TEST(ReverseName, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_reverse_name(*DnsName::parse("a.b.in-addr.arpa")));
  EXPECT_FALSE(
      parse_reverse_name(*DnsName::parse("1.2.3.4.in-addr.example")));
  EXPECT_FALSE(
      parse_reverse_name(*DnsName::parse("256.2.3.4.in-addr.arpa")));
  EXPECT_FALSE(parse_reverse_name(*DnsName::parse("x.2.3.4.in-addr.arpa")));
  EXPECT_FALSE(parse_reverse_name(*DnsName::parse("www.example.com")));
}

TEST(ReverseName, HostnameLabelSanitization) {
  EXPECT_EQ(hostname_label("AT&T-pgw-3"), "at-t-pgw-3");
  EXPECT_EQ(hostname_label("LG U+ hub Seoul"), "lg-u-hub-seoul");
  EXPECT_EQ(hostname_label("ix-New York"), "ix-new-york");
  EXPECT_EQ(hostname_label("***"), "host");
  EXPECT_EQ(hostname_label(std::string(100, 'a')).size(), 63u);
}

class ReverseZoneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new core::World(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static core::World* world_;
  net::Rng rng_{11011};

  ResolutionResult resolve_ptr(net::Ipv4Addr address) {
    // A wired recursive resolver doing the PTR lookup a traceroute tool
    // would perform per hop.
    static RecursiveResolver* resolver = [&]() {
      auto& topo = world_->topology();
      net::Node node;
      node.name = "ptr-resolver";
      node.location = {42.05, -87.68};
      const net::NodeId id = topo.add_node(node);
      topo.add_link(id, world_->nearest_backbone(node.location),
                    net::LatencyModel::fixed(1.0));
      return new RecursiveResolver("ptr-probe", id,
                                   net::Ipv4Addr{203, 0, 116, 1}, &topo,
                                   &world_->registry(),
                                   world_->root_dns_ip());
    }();
    return resolver->resolve(reverse_name(address), RRType::kPTR,
                             net::SimTime::zero(), rng_);
  }
};

core::World* ReverseZoneTest::world_ = nullptr;

TEST_F(ReverseZoneTest, GatewayHopResolvesToCarrierName) {
  auto& att = world_->carrier(0);
  const auto& gateway = world_->topology().node(att.gateway_node(0));
  ASSERT_FALSE(gateway.ip.is_unspecified());
  const auto result = resolve_ptr(gateway.ip);
  ASSERT_EQ(result.rcode, Rcode::kNoError);
  ASSERT_FALSE(result.answers.empty());
  const auto& target =
      std::get<PtrRecord>(result.answers.front().rdata).target;
  // "at-t-pgw-0.rev.curtain-study.net": the hop is attributable to AT&T.
  EXPECT_TRUE(curtain::util::starts_with(target.to_string(), "at-t-pgw-"));
  EXPECT_TRUE(
      target.is_within(*DnsName::parse("rev.curtain-study.net")));
}

TEST_F(ReverseZoneTest, BackboneRouterResolves) {
  const auto& node =
      world_->topology().node(world_->nearest_backbone({41.88, -87.63}));
  const auto result = resolve_ptr(node.ip);
  ASSERT_EQ(result.rcode, Rcode::kNoError);
  const auto& target =
      std::get<PtrRecord>(result.answers.front().rdata).target;
  EXPECT_TRUE(curtain::util::starts_with(target.to_string(), "ix-chicago"));
}

TEST_F(ReverseZoneTest, UnknownAddressIsNxdomain) {
  const auto result = resolve_ptr(net::Ipv4Addr{203, 0, 113, 250});
  EXPECT_EQ(result.rcode, Rcode::kNxDomain);
}

TEST_F(ReverseZoneTest, ReplicaAddressResolvesToCdnName) {
  const auto& cluster = world_->cdn("fastedge").clusters().front();
  const auto result = resolve_ptr(cluster.replica_ips[0]);
  ASSERT_EQ(result.rcode, Rcode::kNoError);
  const auto& target =
      std::get<PtrRecord>(result.answers.front().rdata).target;
  EXPECT_TRUE(curtain::util::starts_with(target.to_string(), "fastedge-"));
}

}  // namespace
}  // namespace curtain::dns
