#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "net/rng.h"

namespace curtain::net {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DeriveIndependentOfParentConsumption) {
  Rng parent(7);
  const Rng child_before = parent.derive("tag");
  parent.next_u64();
  parent.next_u64();
  Rng child_after = parent.derive("tag");
  Rng child_copy = child_before;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_copy.next_u64(), child_after.next_u64());
  }
}

TEST(Rng, DeriveDistinctTags) {
  Rng parent(7);
  Rng a = parent.derive("alpha");
  Rng b = parent.derive("beta");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DeriveTagAndIdComposes) {
  Rng parent(7);
  Rng a = parent.derive("d", 1);
  Rng b = parent.derive("d", 2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformU64InclusiveBounds) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.uniform_u64(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(Rng, UniformU64DegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_u64(9, 9), 9u);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(rng.lognormal_median(50.0, 0.3));
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 50.0, 1.5);
  for (const double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexIgnoresNegativeWeights) {
  Rng rng(29);
  const std::vector<double> weights{-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(37);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

TEST(Mix, MixKeyDistinguishesInputs) {
  EXPECT_NE(mix_key(1, 2), mix_key(2, 1));
  EXPECT_NE(mix_key(0, 0), mix_key(0, 1));
}

TEST(Mix, HashTagStable) {
  EXPECT_EQ(hash_tag("gateways"), hash_tag("gateways"));
  EXPECT_NE(hash_tag("gateways"), hash_tag("gateway"));
}

}  // namespace
}  // namespace curtain::net
