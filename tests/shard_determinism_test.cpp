// The engine's headline contract (DESIGN.md §10): the merged dataset is a
// pure function of the Scenario — Scenario::shards only changes how many
// worker threads execute the per-carrier shards, never what they produce.
// We check that by byte-comparing every CSV export surface between a
// serial (shards=1) and a maximally parallel (shards=4) run of the same
// Scenario, and that parallel runs are reproducible against themselves.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analysis/export.h"
#include "core/study.h"

namespace curtain {
namespace {

core::Scenario scenario(int shards) {
  // ~0.6 days: a few hundred experiments across all six carriers, enough
  // for every record stream (probes, traceroutes, vantage) to be non-empty.
  return core::Scenario::paper_2014()
      .with_seed(8675309)
      .with_scale(0.004)
      .with_shards(shards);
}

struct Exported {
  size_t devices = 0;
  std::string totals;  // summary() minus the wall-clock report suffix
  std::vector<std::string> csv;
};

Exported run_and_export(const core::Scenario& config) {
  core::Study study(config);
  study.run();

  Exported out;
  out.devices = study.device_count();
  const std::string summary = study.summary();
  const std::string suffix = study.report().summary_suffix();
  out.totals = summary.substr(0, summary.size() - suffix.size());

  using Writer = void (*)(const measure::Dataset&, std::ostream&);
  static constexpr Writer kWriters[] = {
      analysis::export_experiments_csv,
      analysis::export_resolutions_csv,
      analysis::export_probes_csv,
      analysis::export_traceroutes_csv,
      analysis::export_resolver_observations_csv,
      analysis::export_vantage_probes_csv,
  };
  for (const Writer writer : kWriters) {
    std::ostringstream stream;
    writer(study.dataset(), stream);
    out.csv.push_back(stream.str());
  }
  return out;
}

void expect_identical(const Exported& a, const Exported& b) {
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.totals, b.totals);
  ASSERT_EQ(a.csv.size(), b.csv.size());
  static constexpr const char* kSurfaces[] = {
      "experiments", "resolutions",           "probes",
      "traceroutes", "resolver_observations", "vantage_probes"};
  for (size_t i = 0; i < a.csv.size(); ++i) {
    EXPECT_FALSE(a.csv[i].empty()) << kSurfaces[i];
    EXPECT_EQ(a.csv[i], b.csv[i]) << "export surface diverged: "
                                  << kSurfaces[i];
  }
}

TEST(ShardDeterminism, SerialAndParallelAreByteIdentical) {
  const Exported serial = run_and_export(scenario(1));
  const Exported parallel = run_and_export(scenario(4));
  // A degenerate campaign would make byte-equality vacuous.
  EXPECT_GT(serial.devices, 100u);
  EXPECT_GT(serial.csv[0].size(), 1000u);
  expect_identical(serial, parallel);
}

TEST(ShardDeterminism, ParallelRunsAreReproducible) {
  const Exported first = run_and_export(scenario(4));
  const Exported second = run_and_export(scenario(4));
  expect_identical(first, second);
}

TEST(ShardDeterminism, WorkerCapBeyondCarrierCountIsHarmless) {
  // shards caps concurrency; more workers than carriers must not change
  // the dataset either.
  const Exported wide = run_and_export(scenario(16));
  const Exported serial = run_and_export(scenario(1));
  expect_identical(wide, serial);
}

}  // namespace
}  // namespace curtain
