// The engine's headline contract (DESIGN.md §13): the merged dataset and
// metrics are a pure function of the Scenario — Scenario::shards (worker
// threads) and Scenario::cohorts (device cohorts per carrier) are purely
// wall-clock levers, never result-visible. We check that by
// byte-comparing every CSV export surface *and* the full Prometheus
// metrics rendering between a serial reference (cohorts=1, workers=1) and
// every combination of cohorts {1,3,7} × workers {1,4} of the same
// Scenario. Cohort count 7 divides none of the six study fleets evenly
// (33, 9, 31, 64, 17, 4 devices) and exceeds the 4-device fleet, so
// uneven slices and empty shards are both exercised.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/export.h"
#include "core/study.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace curtain {
namespace {

core::Scenario scenario(int cohorts, int workers) {
  // ~0.6 days: a few hundred experiments across all six carriers, enough
  // for every record stream (probes, traceroutes, vantage) to be non-empty.
  return core::Scenario::paper_2014()
      .with_seed(8675309)
      .with_scale(0.004)
      .with_cohorts(cohorts)
      .with_shards(workers);
}

struct Exported {
  size_t devices = 0;
  size_t shards = 0;
  std::string totals;  // summary() minus the wall-clock report suffix
  std::string metrics;  // Prometheus text of the merged global registry
  std::vector<std::string> csv;
};

Exported run_and_export(const core::Scenario& config) {
  // Each run merges its shard sheaves into the global registry; zero it
  // first so the metrics comparison sees exactly one campaign.
  obs::metrics().reset_for_tests();
  core::Study study(config);
  study.run();

  Exported out;
  out.devices = study.device_count();
  out.shards = study.shard_count();
  const std::string summary = study.summary();
  const std::string suffix = study.report().summary_suffix();
  out.totals = summary.substr(0, summary.size() - suffix.size());
  out.metrics = obs::to_prometheus_text(obs::metrics().snapshot());

  using Writer = void (*)(const measure::RecordStore&, std::ostream&);
  static constexpr Writer kWriters[] = {
      analysis::export_experiments_csv,
      analysis::export_resolutions_csv,
      analysis::export_probes_csv,
      analysis::export_traceroutes_csv,
      analysis::export_resolver_observations_csv,
      analysis::export_vantage_probes_csv,
  };
  for (const Writer writer : kWriters) {
    std::ostringstream stream;
    writer(study.records(), stream);
    out.csv.push_back(stream.str());
  }
  return out;
}

void expect_identical(const Exported& a, const Exported& b) {
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_EQ(a.metrics, b.metrics) << "merged metrics diverged";
  ASSERT_EQ(a.csv.size(), b.csv.size());
  static constexpr const char* kSurfaces[] = {
      "experiments", "resolutions",           "probes",
      "traceroutes", "resolver_observations", "vantage_probes"};
  for (size_t i = 0; i < a.csv.size(); ++i) {
    EXPECT_FALSE(a.csv[i].empty()) << kSurfaces[i];
    EXPECT_EQ(a.csv[i], b.csv[i]) << "export surface diverged: "
                                  << kSurfaces[i];
  }
}

TEST(ShardDeterminism, CohortAndWorkerCountsAreByteInvisible) {
  const Exported reference = run_and_export(scenario(1, 1));
  // A degenerate campaign would make byte-equality vacuous.
  EXPECT_GT(reference.devices, 100u);
  EXPECT_GT(reference.csv[0].size(), 1000u);
  EXPECT_EQ(reference.shards, 6u);  // six carriers × one cohort
  EXPECT_NE(reference.metrics.find("curtain_fleet_devices 158"),
            std::string::npos)
      << reference.metrics;

  for (const int cohorts : {1, 3, 7}) {
    for (const int workers : {1, 4}) {
      if (cohorts == 1 && workers == 1) continue;
      const Exported run = run_and_export(scenario(cohorts, workers));
      EXPECT_EQ(run.shards, 6u * static_cast<size_t>(cohorts));
      SCOPED_TRACE("cohorts=" + std::to_string(cohorts) +
                   " workers=" + std::to_string(workers));
      expect_identical(reference, run);
    }
  }
}

TEST(ShardDeterminism, ParallelRunsAreReproducible) {
  const Exported first = run_and_export(scenario(3, 4));
  const Exported second = run_and_export(scenario(3, 4));
  expect_identical(first, second);
}

TEST(ShardDeterminism, AutoCohortsMatchTheSerialReference) {
  // cohorts=0 lets the engine size the partition from the worker count;
  // whatever it picks must still be invisible in the exports.
  const Exported reference = run_and_export(scenario(1, 1));
  const Exported auto_sized = run_and_export(scenario(0, 4));
  expect_identical(reference, auto_sized);
}

// High cohort × worker counts (96 shards on 16 threads, with empty shards
// for the 4-device carrier): the scripts/check.sh TSAN leg runs this
// suite to shake out data races in the laned-state partitioning.
TEST(ShardDeterminism, StressManyCohortsManyWorkers) {
  const Exported reference = run_and_export(scenario(1, 1));
  const Exported stressed = run_and_export(scenario(16, 16));
  EXPECT_EQ(stressed.shards, 96u);
  expect_identical(reference, stressed);
}

// The record-block row budget (CURTAIN_BLOCK_ROWS) decides only when a
// block seals — never a byte of any export surface, at any shard/cohort
// shape. Sweeps from the minimum budget (every block seals almost
// immediately) to one larger than the whole campaign (a single block).
TEST(ShardDeterminism, BlockRowBudgetIsByteInvisible) {
  const Exported reference = run_and_export(scenario(1, 1));
  for (const char* rows : {"256", "1024", "1048576"}) {
    ::setenv("CURTAIN_BLOCK_ROWS", rows, 1);
    SCOPED_TRACE(std::string("CURTAIN_BLOCK_ROWS=") + rows);
    const Exported run = run_and_export(scenario(3, 4));
    expect_identical(reference, run);
  }
  ::unsetenv("CURTAIN_BLOCK_ROWS");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The streaming CSV exporter (block-at-a-time, bounded memory) must
// produce byte-identical files to the in-memory cursor path, for every
// worker/cohort shape — the tentpole contract of the record-block
// pipeline (DESIGN.md §15).
TEST(ShardDeterminism, StreamingExportMatchesInMemory) {
  static constexpr const char* kFiles[] = {
      "experiments.csv",  "resolutions.csv",
      "probes.csv",       "traceroutes.csv",
      "resolver_observations.csv", "vantage_probes.csv",
      "MANIFEST.txt"};
  for (const int workers : {1, 4}) {
    for (const int cohorts : {1, 3}) {
      std::string shape = "workers=";
      shape += std::to_string(workers);
      shape += " cohorts=";
      shape += std::to_string(cohorts);
      SCOPED_TRACE(shape);
      obs::metrics().reset_for_tests();
      core::Study study(scenario(cohorts, workers));
      study.run();

      std::string tag = "w";
      tag += std::to_string(workers);
      tag += "c";
      tag += std::to_string(cohorts);
      const std::string memory_dir =
          testing::TempDir() + "curtain_export_memory_" + tag;
      const std::string stream_dir =
          testing::TempDir() + "curtain_export_stream_" + tag;
      std::filesystem::create_directories(memory_dir);
      std::filesystem::create_directories(stream_dir);

      ASSERT_EQ(analysis::export_records(study.records(), memory_dir), 7);
      analysis::StreamingCsvExporter exporter(stream_dir);
      study.records().replay(exporter);
      EXPECT_EQ(exporter.files_written(), 7);

      for (const char* file : kFiles) {
        EXPECT_EQ(slurp(stream_dir + "/" + file),
                  slurp(memory_dir + "/" + file))
            << "streaming export diverged: " << file;
      }
      std::filesystem::remove_all(memory_dir);
      std::filesystem::remove_all(stream_dir);
    }
  }
}

// Drops the curtain_mem_* gauges a profiled run registers — the only
// metrics delta the flight recorder is allowed to introduce.
std::string strip_memory_gauges(const std::string& metrics) {
  std::istringstream in(metrics);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("curtain_mem_") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

// The flight recorder must be a pure observer: arming it (and writing a
// chrome trace) may add profiling metadata but can never change a byte of
// the dataset exports or of any pre-existing metric.
TEST(ShardDeterminism, FlightRecorderIsByteInvisible) {
  const std::string trace_path =
      testing::TempDir() + "curtain_determinism_trace.json";
  const Exported off = run_and_export(scenario(3, 2));
  Exported on = run_and_export(scenario(3, 2).with_profile_out(trace_path));

  // Metrics may differ only by the added curtain_mem_* gauges.
  EXPECT_NE(on.metrics, off.metrics)
      << "profiled run registered no memory gauges";
  EXPECT_EQ(strip_memory_gauges(on.metrics), off.metrics);
  on.metrics = off.metrics;
  expect_identical(off, on);
  std::remove(trace_path.c_str());
}

// Schema sanity of the exported chrome trace: it must parse as the
// trace_event object form and carry one span per shard.
TEST(ShardDeterminism, ChromeTraceCarriesEveryShard) {
  const std::string trace_path =
      testing::TempDir() + "curtain_schema_trace.json";
  obs::metrics().reset_for_tests();
  core::Study study(scenario(3, 2).with_profile_out(trace_path));
  study.run();
  ASSERT_EQ(study.shard_count(), 18u);

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << trace_path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();

  EXPECT_NE(trace.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"otherData\": {\"workers\": 2, \"shards\": 18}"),
            std::string::npos);
  // One complete-event span per shard: every span carries its shard
  // index argument exactly once.
  size_t shard_spans = 0;
  for (size_t pos = trace.find("\"shard\": "); pos != std::string::npos;
       pos = trace.find("\"shard\": ", pos + 1)) {
    ++shard_spans;
  }
  EXPECT_EQ(shard_spans, 18u);
  // The run's profile landed in the report, in shard order.
  const obs::RunReport& report = study.report();
  EXPECT_TRUE(report.profile.enabled);
  ASSERT_EQ(report.profile.shards.size(), 18u);
  EXPECT_EQ(report.config.workers, 2);
  EXPECT_EQ(report.config.shards, 18u);
  for (const auto& shard : report.profile.shards) {
    EXPECT_GE(shard.worker, 1);
    EXPECT_LE(shard.worker, 2);
    EXPECT_GE(shard.queue_wait_ms, 0.0);
  }
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace curtain
