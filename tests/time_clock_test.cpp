#include <gtest/gtest.h>

#include "net/clock.h"
#include "net/time.h"

namespace curtain::net {
namespace {

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(SimTime::from_millis(1.5).micros, 1500);
  EXPECT_DOUBLE_EQ(SimTime::from_seconds(2.0).millis(), 2000.0);
  EXPECT_DOUBLE_EQ(SimTime::from_hours(1.0).seconds(), 3600.0);
  EXPECT_DOUBLE_EQ(SimTime::from_days(2.0).hours(), 48.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::from_seconds(3.0);
  const SimTime b = SimTime::from_seconds(1.0);
  EXPECT_EQ((a + b).seconds(), 4.0);
  EXPECT_EQ((a - b).seconds(), 2.0);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.seconds(), 4.0);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime::from_seconds(1), SimTime::from_seconds(2));
  EXPECT_EQ(SimTime::zero(), SimTime{0});
}

TEST(Calendar, DayLabels) {
  EXPECT_EQ(CampaignCalendar::day_label(SimTime::zero()), "Mar-1");
  EXPECT_EQ(CampaignCalendar::day_label(SimTime::from_days(30)), "Mar-31");
  EXPECT_EQ(CampaignCalendar::day_label(SimTime::from_days(31)), "Apr-1");
  EXPECT_EQ(CampaignCalendar::day_label(SimTime::from_days(153)), "Aug-1");
}

TEST(Calendar, NegativeClampsToEpoch) {
  EXPECT_EQ(CampaignCalendar::day_label(SimTime{-5}), "Mar-1");
}

TEST(SimClock, AdvanceToNeverRewinds) {
  SimClock clock;
  clock.advance_to(SimTime::from_seconds(10));
  clock.advance_to(SimTime::from_seconds(5));
  EXPECT_EQ(clock.now().seconds(), 10.0);
}

TEST(SimClock, AdvanceBy) {
  SimClock clock;
  clock.advance_by(SimTime::from_seconds(2));
  clock.advance_by(SimTime::from_seconds(3));
  EXPECT_EQ(clock.now().seconds(), 5.0);
}

TEST(EventQueue, RunsInTimeOrder) {
  SimClock clock;
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(SimTime::from_seconds(3), [&](SimTime) { order.push_back(3); });
  queue.schedule(SimTime::from_seconds(1), [&](SimTime) { order.push_back(1); });
  queue.schedule(SimTime::from_seconds(2), [&](SimTime) { order.push_back(2); });
  while (queue.run_next(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now().seconds(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  SimClock clock;
  EventQueue queue;
  std::vector<int> order;
  const SimTime t = SimTime::from_seconds(1);
  for (int i = 0; i < 5; ++i) {
    queue.schedule(t, [&order, i](SimTime) { order.push_back(i); });
  }
  while (queue.run_next(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilHonorsHorizon) {
  SimClock clock;
  EventQueue queue;
  int executed = 0;
  for (int i = 1; i <= 10; ++i) {
    queue.schedule(SimTime::from_seconds(i), [&](SimTime) { ++executed; });
  }
  EXPECT_EQ(queue.run_until(clock, SimTime::from_seconds(5)), 5u);
  EXPECT_EQ(executed, 5);
  EXPECT_EQ(queue.size(), 5u);
}

TEST(EventQueue, HandlersCanReschedule) {
  SimClock clock;
  EventQueue queue;
  int fires = 0;
  std::function<void(SimTime)> tick = [&](SimTime at) {
    ++fires;
    if (fires < 4) queue.schedule(at + SimTime::from_seconds(1), tick);
  };
  queue.schedule(SimTime::from_seconds(1), tick);
  while (queue.run_next(clock)) {
  }
  EXPECT_EQ(fires, 4);
  EXPECT_EQ(clock.now().seconds(), 4.0);
}

TEST(EventQueue, ScheduleAfterUsesClockNow) {
  SimClock clock;
  clock.advance_to(SimTime::from_seconds(10));
  EventQueue queue;
  queue.schedule_after(clock, SimTime::from_seconds(5), [](SimTime) {});
  EXPECT_EQ(queue.next_time().seconds(), 15.0);
}

TEST(EventQueue, EmptyQueueRunNextFalse) {
  SimClock clock;
  EventQueue queue;
  EXPECT_FALSE(queue.run_next(clock));
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace curtain::net
