#include <gtest/gtest.h>

#include "net/topology.h"

namespace curtain::net {
namespace {

// A small fixture world:
//
//   [internet]  a -- b -- c          (open zone)
//   [cellnet]        b -- g -- r     (firewalled zone; g visible gateway,
//                                     r resolver; g-r link tunneled)
class TopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cell_zone_ = topo_.add_zone("cellnet", /*blocks_inbound_probes=*/true);
    a_ = add_node("a", Topology::internet_zone(), Ipv4Addr{1, 0, 0, 1});
    b_ = add_node("b", Topology::internet_zone(), Ipv4Addr{1, 0, 0, 2});
    c_ = add_node("c", Topology::internet_zone(), Ipv4Addr{1, 0, 0, 3});
    g_ = add_node("g", cell_zone_, Ipv4Addr{10, 0, 0, 1});
    r_ = add_node("r", cell_zone_, Ipv4Addr{10, 0, 0, 53});
    topo_.mutable_node(g_).kind = NodeKind::kGateway;
    topo_.add_link(a_, b_, LatencyModel::fixed(5.0));
    topo_.add_link(b_, c_, LatencyModel::fixed(7.0));
    topo_.add_link(b_, g_, LatencyModel::fixed(2.0));
    topo_.add_link(g_, r_, LatencyModel::fixed(1.0), 0.0, /*tunneled=*/true);
  }

  NodeId add_node(const std::string& name, ZoneId zone, Ipv4Addr ip) {
    Node node;
    node.name = name;
    node.zone = zone;
    node.ip = ip;
    node.processing = LatencyModel::fixed(0.0);
    return topo_.add_node(node);
  }

  Topology topo_;
  ZoneId cell_zone_ = 0;
  NodeId a_ = 0, b_ = 0, c_ = 0, g_ = 0, r_ = 0;
  Rng rng_{99};
};

TEST_F(TopologyTest, RouteFollowsShortestPath) {
  const auto& path = topo_.route(a_, c_);
  EXPECT_EQ(path, (std::vector<NodeId>{a_, b_, c_}));
}

TEST_F(TopologyTest, RouteToSelf) {
  const auto& path = topo_.route(a_, a_);
  EXPECT_EQ(path, (std::vector<NodeId>{a_}));
}

TEST_F(TopologyTest, UnreachableNodeEmptyRoute) {
  const NodeId lonely = add_node("lonely", Topology::internet_zone(),
                                 Ipv4Addr{9, 9, 9, 9});
  EXPECT_TRUE(topo_.route(a_, lonely).empty());
  EXPECT_FALSE(topo_.transport_rtt_ms(a_, lonely, rng_).has_value());
}

TEST_F(TopologyTest, TransportRttSumsLinks) {
  const auto rtt = topo_.transport_rtt_ms(a_, c_, rng_);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_DOUBLE_EQ(*rtt, 2.0 * (5.0 + 7.0));
}

TEST_F(TopologyTest, TransportCrossesFirewalls) {
  // Solicited traffic (DNS) is not affected by the probe firewall.
  EXPECT_TRUE(topo_.transport_rtt_ms(a_, r_, rng_).has_value());
}

TEST_F(TopologyTest, FindByIp) {
  EXPECT_EQ(topo_.find_by_ip(Ipv4Addr(10, 0, 0, 53)), r_);
  EXPECT_EQ(topo_.find_by_ip(Ipv4Addr(10, 0, 0, 54)), kInvalidNode);
}

TEST_F(TopologyTest, PingWithinInternetSucceeds) {
  const PingResult result = topo_.ping(a_, c_, rng_);
  EXPECT_TRUE(result.responded);
  EXPECT_DOUBLE_EQ(result.rtt_ms, 24.0);
}

TEST_F(TopologyTest, PingIntoFirewalledZoneBlocked) {
  const PingResult result = topo_.ping(a_, r_, rng_);
  EXPECT_FALSE(result.responded);
  EXPECT_EQ(result.failure, PingResult::Failure::kFirewalled);
}

TEST_F(TopologyTest, PingOutOfFirewalledZoneAllowed) {
  const PingResult result = topo_.ping(r_, c_, rng_);
  EXPECT_TRUE(result.responded);
}

TEST_F(TopologyTest, PingWithinFirewalledZoneAllowed) {
  EXPECT_TRUE(topo_.ping(g_, r_, rng_).responded);
}

TEST_F(TopologyTest, OwnerDirectionalPingPolicy) {
  // r answers outsiders but not its own subscribers (Verizon pattern).
  topo_.mutable_node(r_).owner_tag = 7;
  topo_.mutable_node(r_).ping_from_same_owner = false;
  topo_.mutable_node(r_).ping_from_other_owner = true;
  topo_.mutable_node(g_).owner_tag = 7;
  EXPECT_FALSE(topo_.ping(g_, r_, rng_).responded);
  EXPECT_EQ(topo_.ping(g_, r_, rng_).failure,
            PingResult::Failure::kUnresponsive);
  // From outside, the zone firewall is the stronger barrier; move r to
  // the open zone with a direct link to observe the flag in isolation.
  topo_.mutable_node(r_).zone = Topology::internet_zone();
  topo_.add_link(b_, r_, LatencyModel::fixed(1.0));
  EXPECT_TRUE(topo_.ping(a_, r_, rng_).responded);
}

TEST_F(TopologyTest, LossyLinkDropsPings) {
  const NodeId d = add_node("d", Topology::internet_zone(), Ipv4Addr{1, 0, 0, 4});
  topo_.add_link(c_, d, LatencyModel::fixed(1.0), /*loss=*/1.0);
  const PingResult result = topo_.ping(a_, d, rng_);
  EXPECT_FALSE(result.responded);
  EXPECT_EQ(result.failure, PingResult::Failure::kLoss);
}

TEST_F(TopologyTest, TracerouteListsIntermediateHops) {
  const TracerouteResult result = topo_.traceroute(a_, c_, rng_);
  ASSERT_EQ(result.hops.size(), 2u);
  EXPECT_EQ(result.hops[0].node, b_);
  EXPECT_EQ(result.hops[1].node, c_);
  EXPECT_TRUE(result.reached_destination);
  // Later hops have larger RTTs (cumulative one-way latency).
  EXPECT_LT(result.hops[0].rtt_ms, result.hops[1].rtt_ms);
}

TEST_F(TopologyTest, TracerouteStopsAtFirewall) {
  const TracerouteResult result = topo_.traceroute(a_, r_, rng_);
  // Route a-b-g-r: g is the cell ingress, so the trace dies before g.
  ASSERT_EQ(result.hops.size(), 1u);
  EXPECT_EQ(result.hops[0].node, b_);
  EXPECT_FALSE(result.reached_destination);
}

TEST_F(TopologyTest, TracerouteHidesTunneledInteriorHops) {
  // From g to the internet, fine; but from inside, r is reached via a
  // tunneled link: interior hops don't appear. Make a longer tunnel:
  // g - x - r2 where both links are tunneled.
  const NodeId x = add_node("x", cell_zone_, Ipv4Addr{});
  const NodeId r2 = add_node("r2", cell_zone_, Ipv4Addr{10, 0, 0, 54});
  topo_.add_link(g_, x, LatencyModel::fixed(1.0), 0.0, true);
  topo_.add_link(x, r2, LatencyModel::fixed(1.0), 0.0, true);
  const TracerouteResult result = topo_.traceroute(g_, r2, rng_);
  ASSERT_EQ(result.hops.size(), 1u);  // only the destination
  EXPECT_EQ(result.hops[0].node, r2);
  EXPECT_TRUE(result.reached_destination);
}

TEST_F(TopologyTest, TracerouteAnonymousHopForNonResponder) {
  topo_.mutable_node(b_).responds_to_traceroute = false;
  const TracerouteResult result = topo_.traceroute(a_, c_, rng_);
  ASSERT_EQ(result.hops.size(), 2u);
  EXPECT_EQ(result.hops[0].node, kInvalidNode);  // "* * *"
  EXPECT_FALSE(result.hops[0].responded);
  EXPECT_TRUE(result.reached_destination);
}

TEST_F(TopologyTest, ZoneBoundaryFindsIngress) {
  EXPECT_EQ(topo_.zone_boundary(a_, r_), g_);
  EXPECT_EQ(topo_.zone_boundary(r_, a_), b_);
}

TEST_F(TopologyTest, ParallelLinksPickFastest) {
  topo_.add_link(a_, b_, LatencyModel::fixed(1.0));  // faster duplicate
  const auto rtt = topo_.transport_rtt_ms(a_, b_, rng_);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_DOUBLE_EQ(*rtt, 2.0);
}

TEST_F(TopologyTest, ZoneAccessors) {
  EXPECT_EQ(topo_.zone(Topology::internet_zone()).name, "internet");
  EXPECT_TRUE(topo_.zone(cell_zone_).blocks_inbound_probes);
  EXPECT_EQ(topo_.zone_count(), 2u);
}

}  // namespace
}  // namespace curtain::net
