#include <gtest/gtest.h>

#include <sstream>

#include "util/bytes.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/strings.h"

namespace curtain::util {
namespace {

// --- strings ---------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(Strings, SplitSingleField) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, SplitEmptyString) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitTrailingDelimiter) {
  EXPECT_EQ(split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(Strings, SplitNonemptyDropsBlanks) {
  EXPECT_EQ(split_nonempty(",a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"www", "example", "com"};
  EXPECT_EQ(join(parts, "."), "www.example.com");
}

TEST(Strings, JoinEmpty) {
  EXPECT_EQ(join({}, "."), "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hello\t\n"), "hello");
}

TEST(Strings, TrimAllWhitespace) {
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, ToLowerAscii) {
  EXPECT_EQ(to_lower("WwW.ExAmPle.COM"), "www.example.com");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("AT&T-pgw-3", "AT&T"));
  EXPECT_FALSE(starts_with("pgw-AT&T", "AT&T"));
  EXPECT_TRUE(ends_with("m.yelp.com", ".com"));
  EXPECT_FALSE(ends_with("com", "m.yelp.com"));
}

TEST(Strings, IequalsCaseInsensitive) {
  EXPECT_TRUE(iequals("LTE", "lte"));
  EXPECT_FALSE(iequals("LTE", "lte2"));
}

TEST(Strings, ParseU64Valid) {
  EXPECT_EQ(parse_u64("12345"), 12345u);
  EXPECT_EQ(parse_u64("0"), 0u);
}

TEST(Strings, ParseU64Invalid) {
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("12a").has_value());
  EXPECT_FALSE(parse_u64("-3").has_value());
  EXPECT_FALSE(parse_u64("99999999999999999999999").has_value());
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

// --- bytes -----------------------------------------------------------------

TEST(Bytes, WriterBigEndian) {
  ByteWriter w;
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 6u);
  EXPECT_EQ(d[0], 0x12);
  EXPECT_EQ(d[1], 0x34);
  EXPECT_EQ(d[2], 0xde);
  EXPECT_EQ(d[5], 0xef);
}

TEST(Bytes, ReaderRoundTrip) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u16(300);
  w.put_u32(70000);
  w.put_string("hi");
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u16(), 300);
  EXPECT_EQ(r.get_u32(), 70000u);
  EXPECT_EQ(r.get_string(2), "hi");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, ReaderOverrunSetsError) {
  const std::vector<uint8_t> data{1, 2};
  ByteReader r(data);
  EXPECT_EQ(r.get_u32(), 0u);
  EXPECT_FALSE(r.ok());
  // Sticky: further reads also fail.
  EXPECT_EQ(r.get_u8(), 0);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, PatchU16Backpatches) {
  ByteWriter w;
  w.put_u16(0);
  w.put_u8(42);
  w.patch_u16(0, 0xbeef);
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u16(), 0xbeef);
}

TEST(Bytes, SeekPastEndFails) {
  const std::vector<uint8_t> data{1, 2, 3};
  ByteReader r(data);
  r.seek(4);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, SeekWithinBoundsOk) {
  const std::vector<uint8_t> data{1, 2, 3};
  ByteReader r(data);
  r.seek(2);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.get_u8(), 3);
}

TEST(Bytes, HexDump) {
  const std::vector<uint8_t> data{0xde, 0xad};
  EXPECT_EQ(hex_dump(data), "de ad");
}

// --- csv ---------------------------------------------------------------

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(Csv, EscapeQuotesAndCommas) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriterRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a", "b,c"});
  EXPECT_EQ(out.str(), "a,\"b,c\"\n");
}

TEST(Csv, TypedRowFormatsNumbers) {
  std::ostringstream out;
  CsvWriter w(out);
  w.typed_row(std::string("x"), 42, 2.5);
  EXPECT_EQ(out.str(), "x,42,2.5\n");
}

// --- flags -------------------------------------------------------------

TEST(Flags, EnvDoubleFallback) {
  unsetenv("CURTAIN_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("CURTAIN_TEST_D", 1.5), 1.5);
  setenv("CURTAIN_TEST_D", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("CURTAIN_TEST_D", 1.5), 2.25);
  setenv("CURTAIN_TEST_D", "junk", 1);
  EXPECT_DOUBLE_EQ(env_double("CURTAIN_TEST_D", 1.5), 1.5);
  unsetenv("CURTAIN_TEST_D");
}

TEST(Flags, EnvU64) {
  setenv("CURTAIN_TEST_U", "77", 1);
  EXPECT_EQ(env_u64("CURTAIN_TEST_U", 5), 77u);
  unsetenv("CURTAIN_TEST_U");
  EXPECT_EQ(env_u64("CURTAIN_TEST_U", 5), 5u);
}

TEST(Flags, CampaignScaleClamped) {
  setenv("CURTAIN_SCALE", "7", 1);
  EXPECT_DOUBLE_EQ(campaign_scale(), 1.0);
  setenv("CURTAIN_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(campaign_scale(), 0.05);
  unsetenv("CURTAIN_SCALE");
}

}  // namespace
}  // namespace curtain::util
