// End-to-end campaign through the 3G-era baseline world: the whole
// measurement pipeline must work against alternate carrier sets, and the
// era's signature properties (slow radio, few egress points) must show in
// the dataset.
#include <gtest/gtest.h>

#include "analysis/figures.h"
#include "core/study.h"

namespace curtain {
namespace {

class XuCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    study_ = new core::Study(core::Scenario::paper_2014()
                                 .with_seed(314)
                                 .with_scale(0.01)
                                 .with_carriers(cellular::xu_era_carriers()));
    study_->run();
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static core::Study* study_;
};

core::Study* XuCampaignTest::study_ = nullptr;

TEST_F(XuCampaignTest, FleetSizedByXuProfiles) {
  // Four US carriers: 33 + 9 + 31 + 64 devices.
  EXPECT_EQ(study_->device_count(), 137u);
  EXPECT_GT(study_->records().experiment_count(), 200u);
}

TEST_F(XuCampaignTest, NoLteAnywhere) {
  for (const auto& context : study_->records().experiments()) {
    EXPECT_NE(context.radio, cellular::RadioTech::kLte);
  }
}

TEST_F(XuCampaignTest, ResolutionTimes3GClass) {
  // Medians sit far above the LTE era's 40-55 ms.
  const auto group =
      analysis::fig5_fig6_resolution_times(study_->records(), "US");
  for (const auto& [carrier, cdf] : group) {
    EXPECT_GT(cdf.median(), 90.0) << carrier;
  }
}

TEST_F(XuCampaignTest, FewEgressPointsDiscovered) {
  const auto stats = analysis::egress_points(study_->records());
  for (const auto& row : stats) {
    if (row.egress_points == 0) continue;  // KR rows are empty here
    EXPECT_LE(row.egress_points, 6u);  // Xu et al.'s 4-6
  }
}

TEST_F(XuCampaignTest, PipelineStillIdentifiesResolvers) {
  size_t responded = 0;
  for (const auto& observation : study_->records().observations()) {
    responded += observation.responded ? 1 : 0;
  }
  EXPECT_GT(responded, study_->records().observation_count() / 2);
}

}  // namespace
}  // namespace curtain
