# Fails when the tree's active `// lint:` waivers drift from the committed
# inventory (tools/lint/WAIVERS.txt). Regenerate with:
#   ./build/tools/curtain_lint --waivers src bench examples tools \
#       > tools/lint/WAIVERS.txt
execute_process(
  COMMAND ${LINT_BIN} --waivers src bench examples tools
  WORKING_DIRECTORY ${SOURCE_ROOT}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "curtain_lint --waivers failed (rc=${rc})")
endif()
file(READ ${SOURCE_ROOT}/tools/lint/WAIVERS.txt expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR
    "tools/lint/WAIVERS.txt is out of date; regenerate with\n"
    "  ./build/tools/curtain_lint --waivers src bench examples tools "
    "> tools/lint/WAIVERS.txt\n"
    "--- expected (committed) ---\n${expected}\n"
    "--- actual (tree) ---\n${actual}")
endif()
