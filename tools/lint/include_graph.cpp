#include "include_graph.h"

#include <algorithm>
#include <map>

namespace curtain::lint {
namespace {

/// The declared layer DAG (DESIGN.md §16). Order is layer-major so
/// allowed_modules() lists prerequisites bottom-up.
struct ModuleLayer {
  const char* name;
  int layer;
};
constexpr ModuleLayer kLayers[] = {
    {"util", 0},      {"obs", 1},     {"net", 2},  {"dns", 3},
    {"cdn", 4},       {"cellular", 4}, {"publicdns", 4},
    {"measure", 5},   {"exec", 6},    {"analysis", 6},
    {"core", 7},
};

}  // namespace

int module_layer(const std::string& module) {
  for (const ModuleLayer& entry : kLayers) {
    if (module == entry.name) return entry.layer;
  }
  return -1;
}

std::string module_of_path(const std::string& path) {
  size_t at = std::string::npos;
  for (size_t pos = path.find("src/"); pos != std::string::npos;
       pos = path.find("src/", pos + 1)) {
    if (pos == 0 || path[pos - 1] == '/') at = pos;
  }
  if (at == std::string::npos) return std::string();
  const size_t start = at + 4;
  const size_t slash = path.find('/', start);
  if (slash == std::string::npos) return std::string();
  const std::string module = path.substr(start, slash - start);
  return module_layer(module) >= 0 ? module : std::string();
}

bool layering_allows(const std::string& from, const std::string& to) {
  const int from_layer = module_layer(from);
  const int to_layer = module_layer(to);
  if (from_layer < 0 || to_layer < 0) return true;  // out of DAG scope
  if (from == to) return true;
  return to_layer < from_layer;
}

std::string allowed_modules(const std::string& from) {
  const int from_layer = module_layer(from);
  std::string out;
  for (const ModuleLayer& entry : kLayers) {
    if (entry.layer < from_layer || from == entry.name) {
      if (!out.empty()) out += ", ";
      out += entry.name;
    }
  }
  return out;
}

std::vector<Finding> find_include_cycles(const std::vector<GraphFile>& files) {
  // key -> node, ordered so DFS entry order (and thus which include is
  // reported as closing a cycle) is reproducible.
  std::map<std::string, const GraphFile*> nodes;
  for (const GraphFile& file : files) nodes.emplace(file.key, &file);

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<Finding> findings;

  struct Frame {
    const GraphFile* file;
    size_t next_edge = 0;
  };

  for (const auto& [root_key, root] : nodes) {
    if (color[root_key] != Color::kWhite) continue;
    std::vector<Frame> stack{Frame{root}};
    color[root_key] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& includes = frame.file->lexed->includes;
      if (frame.next_edge >= includes.size()) {
        color[frame.file->key] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const IncludeRef& inc = includes[frame.next_edge++];
      if (inc.angled) continue;
      const auto it = nodes.find(inc.target);
      if (it == nodes.end()) continue;
      const Color target_color = color[it->first];
      if (target_color == Color::kBlack) continue;
      if (target_color == Color::kGray) {
        // Back edge: the chain from the target's frame down to here, plus
        // the closing include, is a cycle.
        std::string chain = it->first;
        bool in_cycle = false;
        for (const Frame& f : stack) {
          if (f.file->key == it->first) in_cycle = true;
          if (in_cycle && f.file->key != it->first) {
            chain += " -> " + f.file->key;
          }
        }
        chain += " -> " + it->first;
        const auto& waivers = frame.file->lexed->waivers;
        const size_t line_index = static_cast<size_t>(inc.line - 1);
        if (line_index < waivers.size() &&
            waivers[line_index].count("include-cycle") != 0) {
          continue;
        }
        findings.push_back(Finding{
            frame.file->path, inc.line, "include-cycle",
            "#include \"" + inc.target + "\" closes an include cycle: " +
                chain + "; break the cycle with a forward declaration or an "
                "interface split"});
        continue;
      }
      color[it->first] = Color::kGray;
      stack.push_back(Frame{it->second});
    }
  }
  return findings;
}

}  // namespace curtain::lint
