// Include-graph extraction and the declared layer DAG.
//
// The simulator's modules form a strict layering (DESIGN.md §16):
//
//   util(0) -> obs(1) -> net(2) -> dns(3) -> {cdn, cellular, publicdns}(4)
//     -> measure(5) -> {exec, analysis}(6) -> core(7)
//
// A module may include itself and any *strictly lower* layer; sibling
// modules on the same layer (cdn/cellular/publicdns, exec/analysis) may
// not include each other. bench/, examples/, tools/ and tests/ sit above
// core and are unconstrained. The `layering` rule rejects any project
// include that walks up or across the DAG, and `include-cycle` rejects
// file-level include cycles (which layering cannot see inside a module).
//
// The table is embedded here — the DAG is an architectural decision, so
// changing it means editing this file and facing review, exactly like the
// waiver inventory.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace curtain::lint {

/// Layer index of a `src/` module name ("net", "measure", ...); -1 when
/// the name is not a declared module (external headers, bench helpers).
int module_layer(const std::string& module);

/// The `src/` module a file belongs to: the path component after the last
/// `src/` ("src/net/clock.cpp" -> "net"). Empty for paths outside src/
/// (bench/, examples/, tools/) and for unknown modules.
std::string module_of_path(const std::string& path);

/// True when `from` may include a header of module `to` under the DAG.
bool layering_allows(const std::string& from, const std::string& to);

/// Comma-separated list of modules `from` may include (for diagnostics).
std::string allowed_modules(const std::string& from);

/// One node of the file-level include graph: `key` is the src-relative
/// path ("net/clock.h") that include targets resolve against.
struct GraphFile {
  std::string key;
  std::string path;  ///< full path, used in findings
  const LexedFile* lexed = nullptr;
};

/// Detects file-level include cycles. Each cycle is reported once, as an
/// `include-cycle` finding anchored at the include that closes the cycle,
/// with the full chain in the message. Nodes are visited in sorted key
/// order so output is deterministic.
std::vector<Finding> find_include_cycles(const std::vector<GraphFile>& files);

}  // namespace curtain::lint
