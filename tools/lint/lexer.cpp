#include "lexer.h"

#include <cctype>
#include <cstring>
#include <sstream>

namespace curtain::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Raw-string literal prefixes: the encoding prefixes crossed with R.
bool is_raw_prefix(const std::string& ident) {
  return ident == "R" || ident == "LR" || ident == "uR" || ident == "UR" ||
         ident == "u8R";
}

/// True when the comment text starts (after whitespace) with `marker` —
/// the anchoring that keeps prose mentions of the marker syntax (in docs,
/// in this linter's own sources) from being parsed as the marker itself.
bool comment_starts_with(const std::string& comment, const char* marker) {
  const size_t start = comment.find_first_not_of(" \t\n*");
  if (start == std::string::npos) return false;
  return comment.compare(start, std::strlen(marker), marker) == 0;
}

/// Parses `lint: a, b (note)` waiver comments. The comment text must
/// *start* with `lint:` (after whitespace) — mid-comment mentions are
/// prose. A parenthesized note after a rule name documents why and is not
/// part of the waiver key.
std::set<std::string> parse_waivers(const std::string& comment) {
  std::set<std::string> out;
  size_t start = comment.find_first_not_of(" \t");
  if (start == std::string::npos) return out;
  if (comment.compare(start, 5, "lint:") != 0) return out;
  std::stringstream parts(comment.substr(start + 5));
  std::string part;
  while (std::getline(parts, part, ',')) {
    const size_t paren = part.find('(');
    if (paren != std::string::npos) part.resize(paren);
    const size_t first = part.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const size_t last = part.find_last_not_of(" \t");
    out.insert(part.substr(first, last - first + 1));
  }
  return out;
}

class Lexer {
 public:
  explicit Lexer(const std::string& content) : text_(content) {}

  LexedFile run() {
    while (i_ < text_.size()) {
      step();
    }
    end_line();
    return std::move(out_);
  }

 private:
  char peek(size_t ahead = 0) const {
    return i_ + ahead < text_.size() ? text_[i_ + ahead] : '\0';
  }

  /// True when a backslash at `pos` splices this line to the next
  /// (phase-2 line splicing; applies everywhere except raw strings).
  bool splice_at(size_t pos) const {
    if (pos >= text_.size() || text_[pos] != '\\') return false;
    const char next = pos + 1 < text_.size() ? text_[pos + 1] : '\0';
    return next == '\n' ||
           (next == '\r' && pos + 2 < text_.size() && text_[pos + 2] == '\n');
  }

  /// Consumes a splice sequence; the physical line ends but the logical
  /// line (and any literal/directive state) continues.
  void consume_splice() {
    i_ += text_[i_ + 1] == '\r' ? size_t{3} : size_t{2};
    end_line();
  }

  /// Finishes the current physical line: flushes the code view and the
  /// waiver set, bumps the line counter.
  void end_line() {
    out_.code_lines.push_back(std::move(code_));
    out_.waivers.push_back(std::move(waivers_));
    code_.clear();
    waivers_.clear();
    ++line_;
    line_has_code_ = false;
  }

  void emit(TokenKind kind, std::string text, int at_line) {
    out_.tokens.push_back(Token{kind, std::move(text), at_line});
  }

  void step() {
    const char c = peek();
    if (c == '\n') {
      ++i_;
      end_line();
      return;
    }
    if (c == '\r') {  // swallowed; the '\n' ends the line
      ++i_;
      return;
    }
    if (splice_at(i_)) {
      consume_splice();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      lex_line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      lex_block_comment();
      return;
    }
    if (c == '"') {
      lex_string();
      return;
    }
    if (c == '\'') {
      lex_char_literal();
      return;
    }
    if (c == '#' && !line_has_code_) {
      lex_directive();
      return;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      code_ += c;
      ++i_;
      return;
    }
    line_has_code_ = true;
    if (is_ident_start(c)) {
      lex_ident();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      lex_number();
      return;
    }
    lex_punct();
  }

  void lex_line_comment() {
    const int at_line = line_;
    std::string comment;
    i_ += 2;
    while (i_ < text_.size() && text_[i_] != '\n') {
      if (splice_at(i_)) {  // a trailing backslash continues the comment
        consume_splice();
        continue;
      }
      comment += text_[i_++];
    }
    note_comment(comment, at_line);
  }

  void lex_block_comment() {
    std::string comment;
    i_ += 2;
    while (i_ < text_.size()) {
      if (text_[i_] == '*' && peek(1) == '/') {
        i_ += 2;
        break;
      }
      if (text_[i_] == '\n') {
        ++i_;
        end_line();
        comment += '\n';
        continue;
      }
      comment += text_[i_++];
    }
    // Waivers stay line-comment-only; the hot-path marker may sit in a
    // block comment.
    if (comment_starts_with(comment, "lint-hot-path")) {
      out_.hot_path = true;
    }
  }

  void note_comment(const std::string& comment, int at_line) {
    if (comment_starts_with(comment, "lint-hot-path")) {
      out_.hot_path = true;
    }
    std::set<std::string> parsed = parse_waivers(comment);
    if (parsed.empty()) return;
    if (at_line == line_) {
      waivers_.insert(parsed.begin(), parsed.end());
    } else if (static_cast<size_t>(at_line) <= out_.waivers.size()) {
      // The comment started on an earlier (already flushed) line.
      out_.waivers[static_cast<size_t>(at_line - 1)].insert(parsed.begin(),
                                                            parsed.end());
    }
  }

  void lex_string() {
    const int at_line = line_;
    std::string contents;
    code_ += '"';
    ++i_;
    while (i_ < text_.size() && text_[i_] != '"') {
      if (splice_at(i_)) {
        consume_splice();
        continue;
      }
      if (text_[i_] == '\\' && i_ + 1 < text_.size()) {
        contents += text_[i_];
        contents += text_[i_ + 1];
        i_ += 2;
        continue;
      }
      if (text_[i_] == '\n') {  // unterminated; keep line structure sane
        break;
      }
      contents += text_[i_++];
    }
    if (i_ < text_.size() && text_[i_] == '"') ++i_;
    code_ += '"';
    emit(TokenKind::kString, std::move(contents), at_line);
  }

  /// Raw string: the opening `"` follows an R-suffixed prefix identifier.
  /// No escapes, no splices: the literal ends only at `)delim"`.
  void lex_raw_string() {
    const int at_line = line_;
    code_ += '"';
    ++i_;  // opening quote
    std::string delim;
    while (i_ < text_.size() && text_[i_] != '(') {
      delim += text_[i_++];
    }
    if (i_ < text_.size()) ++i_;  // '('
    const std::string closer = ")" + delim + "\"";
    std::string contents;
    while (i_ < text_.size() &&
           text_.compare(i_, closer.size(), closer) != 0) {
      if (text_[i_] == '\n') {
        ++i_;
        end_line();
        contents += '\n';
        continue;
      }
      contents += text_[i_++];
    }
    if (i_ < text_.size()) i_ += closer.size();
    code_ += '"';
    emit(TokenKind::kString, std::move(contents), at_line);
  }

  void lex_char_literal() {
    const int at_line = line_;
    std::string contents;
    code_ += '\'';
    ++i_;
    while (i_ < text_.size() && text_[i_] != '\'' && text_[i_] != '\n') {
      if (text_[i_] == '\\' && i_ + 1 < text_.size()) {
        contents += text_[i_];
        contents += text_[i_ + 1];
        i_ += 2;
        continue;
      }
      contents += text_[i_++];
    }
    if (i_ < text_.size() && text_[i_] == '\'') ++i_;
    code_ += '\'';
    emit(TokenKind::kCharLit, std::move(contents), at_line);
  }

  void lex_ident() {
    const int at_line = line_;
    std::string ident;
    while (i_ < text_.size()) {
      if (splice_at(i_)) {
        consume_splice();
        continue;
      }
      if (!is_ident_char(text_[i_])) break;
      ident += text_[i_++];
    }
    if (is_raw_prefix(ident) && peek() == '"') {
      code_ += ident;
      lex_raw_string();
      return;
    }
    code_ += ident;
    emit(TokenKind::kIdent, std::move(ident), at_line);
  }

  /// pp-number: digits, identifier chars, `.`, digit separators, and
  /// exponent signs. Greedy, so `1'000'000` is one token and the `'`
  /// never opens a char literal.
  void lex_number() {
    const int at_line = line_;
    std::string num;
    while (i_ < text_.size()) {
      if (splice_at(i_)) {
        consume_splice();
        continue;
      }
      const char c = text_[i_];
      if (is_ident_char(c) || c == '.') {
        num += c;
        ++i_;
        continue;
      }
      if (c == '\'' && is_ident_char(peek(1))) {  // digit separator
        num += c;
        ++i_;
        continue;
      }
      if ((c == '+' || c == '-') && !num.empty()) {
        const char prev = num.back();
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          num += c;
          ++i_;
          continue;
        }
      }
      break;
    }
    code_ += num;
    emit(TokenKind::kNumber, std::move(num), at_line);
  }

  void lex_punct() {
    const int at_line = line_;
    const char c = text_[i_];
    // `::` and `->` matter to the rules; everything else is single-char.
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>')) {
      std::string two{c, text_[i_ + 1]};
      code_ += two;
      i_ += 2;
      emit(TokenKind::kPunct, std::move(two), at_line);
      return;
    }
    code_ += c;
    ++i_;
    emit(TokenKind::kPunct, std::string(1, c), at_line);
  }

  void lex_directive() {
    const int at_line = line_;
    line_has_code_ = true;
    code_ += '#';
    ++i_;
    while (i_ < text_.size() &&
           (text_[i_] == ' ' || text_[i_] == '\t' || splice_at(i_))) {
      if (splice_at(i_)) {
        consume_splice();
      } else {
        code_ += text_[i_++];
      }
    }
    std::string name;
    while (i_ < text_.size() && is_ident_char(text_[i_])) {
      name += text_[i_++];
    }
    code_ += name;
    emit(TokenKind::kDirective, "#" + name, at_line);
    if (name != "include") return;
    // Header-name tokens have their own grammar: no escapes, `<...>` only
    // meaningful here.
    while (i_ < text_.size() &&
           (text_[i_] == ' ' || text_[i_] == '\t' || splice_at(i_))) {
      if (splice_at(i_)) {
        consume_splice();
      } else {
        code_ += text_[i_++];
      }
    }
    const char open = peek();
    if (open != '"' && open != '<') return;
    const char close = open == '"' ? '"' : '>';
    const int target_line = line_;
    ++i_;
    std::string target;
    while (i_ < text_.size() && text_[i_] != close && text_[i_] != '\n') {
      target += text_[i_++];
    }
    if (i_ < text_.size() && text_[i_] == close) ++i_;
    code_ += open == '"' ? "\"\"" : "<>";
    emit(TokenKind::kString, target, target_line);
    out_.includes.push_back(IncludeRef{target, target_line, open == '<'});
  }

  const std::string& text_;
  size_t i_ = 0;
  int line_ = 1;
  bool line_has_code_ = false;
  std::string code_;                 ///< current line's code view
  std::set<std::string> waivers_;    ///< current line's waivers
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& content) { return Lexer(content).run(); }

}  // namespace curtain::lint
