// curtain_lint's token-stream lexer.
//
// Replaces the old per-line comment/string stripper: the whole file is
// scanned by one state machine, so constructs that previously confused a
// line-at-a-time view are handled exactly —
//   * raw string literals (`R"delim(...)delim"`) spanning any number of
//     lines, including unbalanced quotes inside them,
//   * multi-line `/* ... */` comments,
//   * preprocessor line splices (backslash-newline), inside and outside
//     directives,
//   * digit separators (`1'000'000` never opens a char literal).
//
// The lexer produces three coordinated views of a file:
//   * `tokens` — the token stream (identifiers, literals, punctuation,
//     preprocessor directives) with the physical line each token starts
//     on; the structural rules (shared-static, hot-alloc) walk this.
//   * `code_lines` — per-physical-line code text with comments removed
//     and literal contents blanked (quotes kept), preserving the old
//     "code view" contract for the pattern rules (entropy, wallclock,
//     unordered-iter, rng-seed, record-growth, header hygiene).
//   * `includes` — every `#include` with its target and line, feeding
//     the include-graph passes (layering, include-cycle).
//
// Waivers: a `//` comment whose text *starts* with `lint:` declares
// comma-separated rule waivers for its line (`// lint: a, b (note)`);
// mentioning `lint:` mid-comment is prose, not a waiver. A comment
// containing `lint-hot-path` anywhere marks the whole file as a hot path
// for the hot-alloc rule.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace curtain::lint {

enum class TokenKind {
  kIdent,      // identifiers and keywords
  kNumber,     // pp-numbers, digit separators included
  kString,     // string literal (text = contents; raw strings included)
  kCharLit,    // character literal (text = contents)
  kPunct,      // punctuation; `::` and `->` are single tokens
  kDirective,  // `#include`, `#pragma`, ... (text includes the '#')
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  ///< 1-based physical line the token starts on
};

/// One `#include` as written, with quote style.
struct IncludeRef {
  std::string target;  ///< path between the quotes/brackets
  int line = 0;
  bool angled = false;  ///< `<...>` (system) vs `"..."` (project)
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<std::string> code_lines;  ///< comment-stripped, literals blanked
  std::vector<std::set<std::string>> waivers;  ///< per physical line
  std::vector<IncludeRef> includes;
  bool hot_path = false;  ///< file carries a `lint-hot-path` marker comment
};

LexedFile lex(const std::string& content);

}  // namespace curtain::lint
