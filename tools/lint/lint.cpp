#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "include_graph.h"
#include "lexer.h"

namespace curtain::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos..pos+token)` matches `token` with identifier
/// boundaries on both sides (so "srand" does not match inside "strand").
bool token_at(const std::string& text, size_t pos, const std::string& token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const size_t end = pos + token.size();
  if (end < text.size() && is_ident_char(text[end])) return false;
  return true;
}

size_t find_token(const std::string& text, const std::string& token,
                  size_t from = 0) {
  for (size_t pos = text.find(token, from); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (token_at(text, pos, token)) return pos;
  }
  return std::string::npos;
}

size_t skip_spaces(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_contains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

/// Files whose iteration order can reach exported artifacts or analysis
/// results. dns/cdn/cellular/net runtime state is excluded by design: it is
/// per-shard and replays an identical operation sequence for every
/// CURTAIN_SHARDS value, so its iteration order never crosses into exports.
bool reaches_export_paths(const std::string& path) {
  return path_contains(path, "src/analysis/") ||
         path_contains(path, "src/measure/") ||
         path_contains(path, "src/exec/") ||
         path_contains(path, "src/core/") ||
         path_contains(path, "src/obs/") || path_contains(path, "bench/") ||
         path_contains(path, "examples/");
}

struct JoinedCode {
  std::string text;                 // code views joined by '\n'
  std::vector<size_t> line_starts;  // offset of each line in `text`

  int line_of(size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<int>(it - line_starts.begin());
  }
};

JoinedCode join(const std::vector<std::string>& code_lines) {
  JoinedCode joined;
  for (const std::string& line : code_lines) {
    joined.line_starts.push_back(joined.text.size());
    joined.text += line;
    joined.text += '\n';
  }
  return joined;
}

/// Offset just past the matching close of the bracket at `open` (which must
/// index a '(', '<', '{' or '['); npos when unbalanced.
size_t match_bracket(const std::string& text, size_t open) {
  const char open_char = text[open];
  const char close_char = open_char == '(' ? ')'
                          : open_char == '<' ? '>'
                          : open_char == '{' ? '}'
                                             : ']';
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_char) ++depth;
    if (text[i] == close_char && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

class Linter {
 public:
  /// `sibling_header`: the lexed same-stem header of a .cpp, consulted only
  /// for unordered-container member declarations, so `for (x : member_)` in
  /// world.cpp is caught even though `member_` is declared in world.h.
  Linter(std::string path, LexedFile lexed, LexedFile sibling_header)
      : path_(std::move(path)),
        header_(path_ends_with(path_, ".h") || path_ends_with(path_, ".hpp")),
        lexed_(std::move(lexed)),
        joined_(join(lexed_.code_lines)),
        sibling_joined_(join(sibling_header.code_lines)) {}

  std::vector<Finding> run() {
    check_entropy();
    check_wallclock();
    check_unordered_iteration();
    check_rng_seed();
    check_record_growth();
    check_layering();
    check_shared_static();
    check_hot_alloc();
    check_header_hygiene();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    return std::move(findings_);
  }

 private:
  void report(int line, const std::string& rule, std::string message) {
    if (static_cast<size_t>(line) <= lexed_.waivers.size()) {
      const auto& waivers = lexed_.waivers[static_cast<size_t>(line - 1)];
      if (waivers.count(rule) != 0) return;
      if (rule == "unordered-iter" &&
          waivers.count("order-insensitive") != 0) {
        return;
      }
      // `bounded` is the self-documenting spelling for record vectors whose
      // size has a structural cap (a block sealed at the row budget, a
      // fixed ring) rather than growing with campaign length.
      if (rule == "record-growth" && waivers.count("bounded") != 0) return;
      // `profiler-wallclock` is the self-documenting spelling for clock
      // reads inside the flight recorder / perf-timing substrate: real
      // time that is exported as profiling metadata but never feeds a
      // simulated result.
      if (rule == "wallclock" && waivers.count("profiler-wallclock") != 0) {
        return;
      }
    }
    findings_.push_back(Finding{path_, line, rule, std::move(message)});
  }

  void check_token_rule(const std::string& rule, const std::string& token,
                        const std::string& message) {
    for (size_t pos = find_token(joined_.text, token); pos != std::string::npos;
         pos = find_token(joined_.text, token, pos + 1)) {
      report(joined_.line_of(pos), rule, message);
    }
  }

  // entropy: every random draw must flow through net::Rng so that a study
  // seed reproduces the exact dataset.
  void check_entropy() {
    if (path_ends_with(path_, "net/rng.cpp")) return;
    for (const char* token : {"rand", "srand", "random_device"}) {
      check_token_rule("entropy", token,
                       std::string(token) +
                           " bypasses the deterministic net::Rng streams; "
                           "derive an Rng from the scenario seed instead");
    }
  }

  // wallclock: simulation time is net::SimClock; real time may only be
  // touched by the clock substrate itself (and explicitly waived perf
  // timing, which never feeds results).
  void check_wallclock() {
    if (path_ends_with(path_, "net/clock.cpp") ||
        path_ends_with(path_, "net/time.cpp")) {
      return;
    }
    for (const char* token :
         {"system_clock", "steady_clock", "high_resolution_clock",
          "gettimeofday", "clock_gettime", "timespec_get"}) {
      check_token_rule("wallclock", token,
                       std::string(token) +
                           " leaks wall-clock time into the virtual-time "
                           "substrate; use net::SimClock");
    }
    // time(nullptr) / time(NULL): the `time` token alone is far too common,
    // so require the null-argument call shape.
    for (size_t pos = find_token(joined_.text, "time"); pos != std::string::npos;
         pos = find_token(joined_.text, "time", pos + 1)) {
      size_t cursor = skip_spaces(joined_.text, pos + 4);
      if (cursor >= joined_.text.size() || joined_.text[cursor] != '(') continue;
      cursor = skip_spaces(joined_.text, cursor + 1);
      if (token_at(joined_.text, cursor, "nullptr") ||
          token_at(joined_.text, cursor, "NULL")) {
        report(joined_.line_of(pos), "wallclock",
               "time(nullptr) leaks wall-clock time into the virtual-time "
               "substrate; use net::SimClock");
      }
    }
  }

  /// Collects variable (or member/parameter) names declared with
  /// `<container><template-args>` anywhere in `text`.
  static void collect_container_names(const std::string& text,
                                      const char* container,
                                      std::set<std::string>& names) {
    for (size_t pos = find_token(text, container); pos != std::string::npos;
         pos = find_token(text, container, pos + 1)) {
      size_t cursor = skip_spaces(text, pos + std::strlen(container));
      if (cursor >= text.size() || text[cursor] != '<') continue;
      cursor = match_bracket(text, cursor);
      if (cursor == std::string::npos) continue;
      cursor = skip_spaces(text, cursor);
      while (cursor < text.size() &&
             (text[cursor] == '&' || text[cursor] == '*')) {
        cursor = skip_spaces(text, cursor + 1);
      }
      const size_t name_start = cursor;
      while (cursor < text.size() && is_ident_char(text[cursor])) ++cursor;
      if (cursor == name_start) continue;
      const std::string name = text.substr(name_start, cursor - name_start);
      // `> name(` is a function returning the container, not a variable.
      if (skip_spaces(text, cursor) < text.size() &&
          text[skip_spaces(text, cursor)] == '(') {
        continue;
      }
      names.insert(name);
    }
  }

  std::set<std::string> unordered_names() const {
    std::set<std::string> names;
    for (const char* container : {"unordered_map", "unordered_set"}) {
      collect_container_names(joined_.text, container, names);
      collect_container_names(sibling_joined_.text, container, names);
    }
    // A name also declared with a deterministically ordered container is
    // not (only) a hash container — typically a local shadowing a member,
    // or a same-named sequence (e.g. util::SmallVec, whose iteration order
    // is insertion order by construction). Give those the benefit of the
    // doubt rather than flagging every loop over them.
    std::set<std::string> order_safe;
    for (const char* container : {"map", "set", "multimap", "multiset",
                                  "vector", "deque", "array", "SmallVec"}) {
      collect_container_names(joined_.text, container, order_safe);
      collect_container_names(sibling_joined_.text, container, order_safe);
    }
    for (const std::string& name : order_safe) names.erase(name);
    return names;
  }

  // unordered-iter: iterating a hash container feeds bucket order into
  // whatever consumes the loop; in export/analysis-reaching files that is a
  // reproducibility hazard unless explicitly declared order-insensitive.
  void check_unordered_iteration() {
    if (!reaches_export_paths(path_)) return;
    const std::set<std::string> names = unordered_names();
    if (names.empty()) return;

    // Range-for: `for (... : <expr>)` where <expr>'s last identifier
    // component names an unordered container declared in this file.
    for (size_t pos = find_token(joined_.text, "for"); pos != std::string::npos;
         pos = find_token(joined_.text, "for", pos + 1)) {
      const size_t open = skip_spaces(joined_.text, pos + 3);
      if (open >= joined_.text.size() || joined_.text[open] != '(') continue;
      const size_t close = match_bracket(joined_.text, open);
      if (close == std::string::npos) continue;
      const std::string header =
          joined_.text.substr(open + 1, close - open - 2);
      // The range-for ':' sits at bracket depth 0 within the header and is
      // never part of a '::'.
      size_t colon = std::string::npos;
      int depth = 0;
      for (size_t i = 0; i < header.size(); ++i) {
        const char c = header[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        if (c == ':' && depth == 0) {
          if ((i + 1 < header.size() && header[i + 1] == ':') ||
              (i > 0 && header[i - 1] == ':')) {
            continue;
          }
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      std::string range = header.substr(colon + 1);
      // Reduce `a.b`, `a->b_`, `*p` to the final identifier component.
      while (!range.empty() &&
             std::isspace(static_cast<unsigned char>(range.back())) != 0) {
        range.pop_back();
      }
      size_t last = range.size();
      while (last > 0 && is_ident_char(range[last - 1])) --last;
      const std::string final_ident = range.substr(last);
      if (names.count(final_ident) != 0) {
        report(joined_.line_of(pos), "unordered-iter",
               "range-for over unordered container '" + final_ident +
                   "' feeds hash-bucket order into an export/analysis path; "
                   "use std::map / a sorted vector, or waive with "
                   "`// lint: order-insensitive`");
      }
    }

    // Iterator loops: any `<name>.begin()` / `<name>.cbegin()` on a tracked
    // container.
    for (const std::string& name : names) {
      for (const char* method : {".begin", ".cbegin"}) {
        const std::string pattern = name + method;
        for (size_t pos = joined_.text.find(pattern); pos != std::string::npos;
             pos = joined_.text.find(pattern, pos + 1)) {
          if (pos > 0 && is_ident_char(joined_.text[pos - 1])) continue;
          report(joined_.line_of(pos), "unordered-iter",
                 "iterator walk over unordered container '" + name +
                     "' feeds hash-bucket order into an export/analysis "
                     "path; use std::map / a sorted vector, or waive with "
                     "`// lint: order-insensitive`");
        }
      }
    }
  }

  void require_seeded_construction(size_t token_pos, size_t args_open) {
    const size_t args_close = match_bracket(joined_.text, args_open);
    const std::string args =
        args_close == std::string::npos
            ? joined_.text.substr(args_open)
            : joined_.text.substr(args_open, args_close - args_open);
    for (const char* source : {"mix_key", "hash_tag", "derive", "seed",
                               "Seed"}) {
      if (args.find(source) != std::string::npos) return;
    }
    report(joined_.line_of(token_pos), "rng-seed",
           "Rng constructed from a value not traceable to "
           "mix_key/hash_tag/derive/a seed; every stream must derive from "
           "Scenario::seed");
  }

  // rng-seed: Rng streams must be derived, never seeded ad hoc, so adding a
  // consumer can never perturb another stream.
  void check_rng_seed() {
    if (path_ends_with(path_, "net/rng.cpp") ||
        path_ends_with(path_, "net/rng.h")) {
      return;
    }
    for (size_t pos = find_token(joined_.text, "Rng"); pos != std::string::npos;
         pos = find_token(joined_.text, "Rng", pos + 1)) {
      size_t cursor = skip_spaces(joined_.text, pos + 3);
      if (cursor >= joined_.text.size()) break;
      if (joined_.text[cursor] == '(') {
        // Temporary: Rng(<args>).
        require_seeded_construction(pos, cursor);
        continue;
      }
      if (joined_.text[cursor] == '>') {
        // make_shared<net::Rng>(<args>) / make_unique<net::Rng>(<args>).
        const size_t call = skip_spaces(joined_.text, cursor + 1);
        if (call < joined_.text.size() && joined_.text[call] == '(') {
          require_seeded_construction(pos, call);
        }
        continue;
      }
      if (!is_ident_char(joined_.text[cursor])) continue;
      // Named construction: Rng <name>(<args>).
      while (cursor < joined_.text.size() && is_ident_char(joined_.text[cursor])) {
        ++cursor;
      }
      cursor = skip_spaces(joined_.text, cursor);
      if (cursor < joined_.text.size() && joined_.text[cursor] == '(') {
        require_seeded_construction(pos, cursor);
      }
    }
  }

  // record-growth: a std::vector of measurement-record rows is the
  // grow-forever accumulation pattern the streaming record-block pipeline
  // replaced (DESIGN.md §15) — at a million devices it is exactly what
  // breaks the RSS ceiling. Rows belong in a RecordBlock sealed at the
  // row budget and flushed to a RecordSink; structurally capped vectors
  // (the block's own rows, fixed rings) waive with the `bounded` alias,
  // and an explicitly retained store waives with the rule name itself.
  void check_record_growth() {
    static const char* const kRecordTypes[] = {
        "ExperimentContext",     "DnsMeasurement",  "ProbeMeasurement",
        "TracerouteMeasurement", "ResolverObservation", "VantageProbe",
        "ResolutionTrace",       "RecordBlock"};
    for (size_t pos = find_token(joined_.text, "vector");
         pos != std::string::npos;
         pos = find_token(joined_.text, "vector", pos + 1)) {
      size_t cursor = skip_spaces(joined_.text, pos + 6);
      if (cursor >= joined_.text.size() || joined_.text[cursor] != '<') {
        continue;
      }
      const size_t close = match_bracket(joined_.text, cursor);
      if (close == std::string::npos) continue;
      const std::string inner =
          joined_.text.substr(cursor + 1, close - cursor - 2);
      const char* matched = nullptr;
      for (const char* type : kRecordTypes) {
        if (find_token(inner, type) != std::string::npos) {
          matched = type;
          break;
        }
      }
      if (matched == nullptr) continue;
      // Only owning declarations accumulate: references/pointers view
      // someone else's storage, and `> name(` / `> Qualified::name(` is a
      // function signature, not a vector.
      cursor = skip_spaces(joined_.text, close);
      if (cursor >= joined_.text.size() || joined_.text[cursor] == '&' ||
          joined_.text[cursor] == '*') {
        continue;
      }
      size_t name_end = cursor;
      while (name_end < joined_.text.size() &&
             (is_ident_char(joined_.text[name_end]) ||
              joined_.text.compare(name_end, 2, "::") == 0)) {
        name_end += joined_.text[name_end] == ':' ? size_t{2} : size_t{1};
      }
      if (name_end == cursor) continue;
      if (skip_spaces(joined_.text, name_end) < joined_.text.size() &&
          joined_.text[skip_spaces(joined_.text, name_end)] == '(') {
        continue;
      }
      report(joined_.line_of(pos), "record-growth",
             "std::vector<" + std::string(matched) +
                 "> accumulates measurement records without a bound; "
                 "stream rows through a RecordBlock/RecordSink, or waive a "
                 "structurally capped container with the `bounded` alias");
    }
  }

  // layering: project includes must follow the declared layer DAG
  // (include_graph.h). Only files inside a src/ module are constrained;
  // bench/, examples/ and tools/ sit above the DAG.
  void check_layering() {
    const std::string module = module_of_path(path_);
    if (module.empty()) return;
    for (const IncludeRef& inc : lexed_.includes) {
      if (inc.angled) continue;
      const size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string target = inc.target.substr(0, slash);
      if (module_layer(target) < 0) continue;
      if (layering_allows(module, target)) continue;
      report(inc.line, "layering",
             "#include \"" + inc.target + "\" violates the layer DAG: " +
                 module + " -> " + target + " is an upward edge (" + module +
                 " may include: " + allowed_modules(module) +
                 "); move the shared type down a layer or invert the "
                 "dependency");
    }
  }

  // shared-static: a mutable static at namespace or function scope is
  // state shared by every worker thread — under the campaign's worker
  // pool that is a data race or a cross-shard determinism leak waiting to
  // happen. const/constexpr/constinit tables and thread_local state are
  // fine; class-static members are declared at class scope and tracked
  // through their namespace-scope definitions instead.
  void check_shared_static() {
    const auto& toks = lexed_.tokens;
    enum class Scope { kNamespace, kClass, kBlock };
    std::vector<Scope> scopes;
    enum class Pending { kNone, kNamespace, kClass } pending = Pending::kNone;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "{") {
          scopes.push_back(pending == Pending::kNamespace ? Scope::kNamespace
                           : pending == Pending::kClass   ? Scope::kClass
                                                          : Scope::kBlock);
          pending = Pending::kNone;
        } else if (t.text == "}") {
          if (!scopes.empty()) scopes.pop_back();
        } else if (t.text == ";" || t.text == "(" || t.text == "=") {
          pending = Pending::kNone;
        }
        continue;
      }
      if (t.kind != TokenKind::kIdent) continue;
      if (t.text == "namespace") {
        pending = Pending::kNamespace;
        continue;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum") {
        pending = Pending::kClass;
        continue;
      }
      if (t.text == "template") {
        // Skip `<...>` so `template <class T>` cannot leak a class scope
        // onto the function body that follows.
        if (i + 1 < toks.size() && toks[i + 1].text == "<") {
          int angle = 0;
          size_t j = i + 1;
          for (; j < toks.size(); ++j) {
            if (toks[j].kind != TokenKind::kPunct) continue;
            if (toks[j].text == "<") ++angle;
            if (toks[j].text == ">" && --angle == 0) break;
          }
          i = j;
        }
        continue;
      }
      if (t.text != "static") continue;
      const Scope scope = scopes.empty() ? Scope::kNamespace : scopes.back();
      if (scope == Scope::kClass) continue;
      i = scan_static_declaration(i, scope == Scope::kNamespace);
    }
  }

  /// Examines the declaration starting at the `static` token at `at`;
  /// reports unless it is const/constexpr/constinit/thread_local or a
  /// function. Returns the index to resume the scope walk from (before
  /// any function body, so braces stay balanced).
  size_t scan_static_declaration(size_t at, bool namespace_scope) {
    const auto& toks = lexed_.tokens;
    bool safe = false;
    bool has_eq = false;
    bool paren_seen = false;
    std::string name;
    int depth = 0;        // () [] {} nesting
    int angle_depth = 0;  // <> nesting, tracked only before `=`
    size_t j = at + 1;
    for (; j < toks.size(); ++j) {
      const Token& d = toks[j];
      if (d.kind == TokenKind::kIdent) {
        if (d.text == "const" || d.text == "constexpr" ||
            d.text == "constinit" || d.text == "thread_local") {
          safe = true;
        }
        if (depth == 0 && angle_depth == 0 && !has_eq) name = d.text;
        continue;
      }
      if (d.kind != TokenKind::kPunct) continue;
      const std::string& p = d.text;
      if (p == "(" || p == "[" || p == "{") {
        if (p == "{" && depth == 0 && angle_depth == 0 && paren_seen &&
            !has_eq) {
          // `static T name(args) { ... }` — a function definition.
          return j - 1;  // resume at `{` so the scope walk sees the body
        }
        if (p == "(" && depth == 0 && angle_depth == 0 && !has_eq) {
          paren_seen = true;
        }
        ++depth;
        continue;
      }
      if (p == ")" || p == "]" || p == "}") {
        if (depth > 0) --depth;
        continue;
      }
      if (p == "<" && !has_eq) ++angle_depth;
      if (p == ">" && !has_eq && angle_depth > 0) --angle_depth;
      if (p == "=" && depth == 0 && angle_depth == 0) has_eq = true;
      if (p == ";" && depth == 0 && (has_eq || angle_depth == 0)) {
        if (paren_seen && !has_eq && namespace_scope) {
          // `static T name(args);` at namespace scope — a function
          // declaration, not a variable.
          return j;
        }
        break;
      }
    }
    if (!safe) {
      report(toks[at].line, "shared-static",
             "mutable static '" + (name.empty() ? std::string("?") : name) +
                 "' is shared across the worker pool; make it "
                 "const/constexpr/thread_local, move it into per-shard "
                 "state, or waive with `// lint: shared-static (why)`");
    }
    return j;
  }

  // hot-alloc: files carrying a `lint-hot-path` marker declare their inner
  // loops allocation-free (the PR-5 hot-path contract: event queue, DNS
  // cache, DNS name, shard wake-up). Heap allocation idioms there are
  // regressions unless explicitly waived.
  void check_hot_alloc() {
    if (!lexed_.hot_path) return;
    const auto& toks = lexed_.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdent) continue;
      if (t.text == "new") {
        // Placement new (`::new (addr) T`) reuses storage — allowed.
        if (i + 1 < toks.size() && toks[i + 1].kind == TokenKind::kPunct &&
            toks[i + 1].text == "(") {
          continue;
        }
        report(t.line, "hot-alloc",
               "heap allocation (new) on a lint-hot-path file; use inline "
               "storage, a slab, or waive with `// lint: hot-alloc (why)`");
        continue;
      }
      if (t.text == "make_unique" || t.text == "make_shared") {
        report(t.line, "hot-alloc",
               t.text + " allocates on a lint-hot-path file; preallocate "
               "outside the hot loop or waive with `// lint: hot-alloc "
               "(why)`");
        continue;
      }
      if (t.text == "function" && i >= 2 &&
          toks[i - 1].kind == TokenKind::kPunct && toks[i - 1].text == "::" &&
          toks[i - 2].kind == TokenKind::kIdent && toks[i - 2].text == "std") {
        report(t.line, "hot-alloc",
               "std::function construction may heap-allocate its capture on "
               "a lint-hot-path file; use a template parameter or "
               "net::EventFn-style inline storage");
        continue;
      }
      if (t.text == "string") {
        // By-value std::string (parameter or copy-init) — a copy plus a
        // likely allocation per call. `std::string s;`, `std::string&`,
        // `std::string*` and member declarations are fine.
        const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
        if (next == nullptr) continue;
        bool by_value = false;
        if (next->kind == TokenKind::kPunct &&
            (next->text == "," || next->text == ")")) {
          by_value = true;  // unnamed by-value parameter
        } else if (next->kind == TokenKind::kIdent && i + 2 < toks.size() &&
                   toks[i + 2].kind == TokenKind::kPunct &&
                   (toks[i + 2].text == "," || toks[i + 2].text == ")" ||
                    toks[i + 2].text == "=")) {
          by_value = true;  // `std::string name {,|)|=}`
        }
        if (by_value) {
          report(t.line, "hot-alloc",
                 "by-value std::string on a lint-hot-path file copies (and "
                 "likely allocates) per call; pass std::string_view or a "
                 "const reference");
        }
      }
    }
  }

  // pragma-once / using-namespace: header hygiene.
  void check_header_hygiene() {
    if (!header_) return;
    bool has_pragma = false;
    for (const std::string& line : lexed_.code_lines) {
      if (line.find("#pragma once") != std::string::npos) {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      report(1, "pragma-once", "header is missing #pragma once");
    }
    for (size_t pos = find_token(joined_.text, "using");
         pos != std::string::npos;
         pos = find_token(joined_.text, "using", pos + 1)) {
      const size_t next = skip_spaces(joined_.text, pos + 5);
      if (token_at(joined_.text, next, "namespace")) {
        report(joined_.line_of(pos), "using-namespace",
               "using-namespace in a header leaks names into every includer");
      }
    }
  }

  std::string path_;
  bool header_;
  LexedFile lexed_;
  JoinedCode joined_;
  JoinedCode sibling_joined_;
  std::vector<Finding> findings_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

bool lintable_extension(const std::string& ext) {
  return ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc";
}

/// Same-stem header candidates for a source file, in pairing priority:
/// sibling x.h / x.hpp, then x.{h,hpp} in an include/ directory next to
/// the source, then in an include/ directory one level above (the
/// lib/src + lib/include layout).
std::vector<std::string> sibling_header_candidates(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path p(path);
  const fs::path dir = p.parent_path();
  const std::string stem = p.stem().string();
  std::vector<std::string> out;
  for (const char* ext : {".h", ".hpp"}) {
    out.push_back((dir / (stem + ext)).string());
  }
  for (const char* ext : {".h", ".hpp"}) {
    out.push_back((dir / "include" / (stem + ext)).string());
  }
  for (const char* ext : {".h", ".hpp"}) {
    out.push_back(
        (dir.parent_path() / "include" / (stem + ext)).lexically_normal()
            .string());
  }
  return out;
}

/// The src-relative key ("net/clock.h") include targets resolve against;
/// empty for files outside a src/ tree.
std::string src_relative_key(const std::string& path) {
  size_t at = std::string::npos;
  for (size_t pos = path.find("src/"); pos != std::string::npos;
       pos = path.find("src/", pos + 1)) {
    if (pos == 0 || path[pos - 1] == '/') at = pos;
  }
  if (at == std::string::npos) return std::string();
  return path.substr(at + 4);
}

struct SourceFile {
  std::string path;
  std::string content;
  std::string sibling_content;
};

/// The shared engine behind lint_file_set and lint_tree: per-file rules
/// plus the cross-file include-cycle pass.
std::vector<Finding> lint_sources(std::vector<SourceFile> files) {
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  std::vector<Finding> findings;
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& file : files) {
    lexed.push_back(lex(file.content));
  }
  for (size_t i = 0; i < files.size(); ++i) {
    auto file_findings =
        Linter(files[i].path, lexed[i], lex(files[i].sibling_content)).run();
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  std::vector<GraphFile> graph;
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string key = src_relative_key(files[i].path);
    if (key.empty()) continue;
    graph.push_back(GraphFile{key, files[i].path, &lexed[i]});
  }
  auto cycle_findings = find_include_cycles(graph);
  findings.insert(findings.end(),
                  std::make_move_iterator(cycle_findings.begin()),
                  std::make_move_iterator(cycle_findings.end()));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

/// Collects every lintable file under the roots. Directories named
/// "testdata" hold deliberate violations; they are skipped unless the
/// root itself points into one.
std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root)) continue;
    const bool root_in_testdata = path_contains(root, "testdata");
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string path = entry.path().string();
      if (!root_in_testdata && path_contains(path, "/testdata/")) continue;
      if (lintable_extension(entry.path().extension().string())) {
        files.push_back(path);
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

std::string format(const Waiver& waiver) {
  std::ostringstream out;
  out << waiver.file << ":" << waiver.line << ": " << waiver.rule;
  return out.str();
}

std::string format_json(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    const Finding& f = findings[i];
    out += "  {\"file\": \"" + json_escape(f.file) + "\", \"line\": " +
           std::to_string(f.line) + ", \"rule\": \"" + json_escape(f.rule) +
           "\", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += findings.empty() ? "]" : "\n]";
  return out;
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content) {
  return Linter(path, lex(content), LexedFile{}).run();
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content,
                               const std::string& sibling_header_content) {
  return Linter(path, lex(content), lex(sibling_header_content)).run();
}

std::vector<Finding> lint_file_set(const std::vector<FileContent>& files) {
  std::map<std::string, const std::string*> by_path;
  for (const FileContent& file : files) {
    by_path[file.path] = &file.content;
  }
  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const FileContent& file : files) {
    SourceFile source{file.path, file.content, std::string()};
    if (path_ends_with(file.path, ".cpp") || path_ends_with(file.path, ".cc")) {
      for (const std::string& candidate :
           sibling_header_candidates(file.path)) {
        const auto it = by_path.find(candidate);
        if (it != by_path.end()) {
          source.sibling_content = *it->second;
          break;
        }
      }
    }
    sources.push_back(std::move(source));
  }
  return lint_sources(std::move(sources));
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> sources;
  for (const std::string& file : collect_files(roots)) {
    SourceFile source{file, read_file(file), std::string()};
    if (path_ends_with(file, ".cpp") || path_ends_with(file, ".cc")) {
      for (const std::string& candidate : sibling_header_candidates(file)) {
        if (fs::is_regular_file(candidate)) {
          source.sibling_content = read_file(candidate);
          break;
        }
      }
    }
    sources.push_back(std::move(source));
  }
  return lint_sources(std::move(sources));
}

std::vector<Waiver> collect_waivers(const std::vector<std::string>& roots) {
  std::vector<Waiver> out;
  for (const std::string& file : collect_files(roots)) {
    const LexedFile lexed = lex(read_file(file));
    for (size_t line = 0; line < lexed.waivers.size(); ++line) {
      for (const std::string& rule : lexed.waivers[line]) {
        out.push_back(Waiver{file, static_cast<int>(line + 1), rule});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Waiver& a, const Waiver& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return out;
}

}  // namespace curtain::lint
