#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>

namespace curtain::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos..pos+token)` matches `token` with identifier
/// boundaries on both sides (so "srand" does not match inside "strand").
bool token_at(const std::string& text, size_t pos, const std::string& token) {
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const size_t end = pos + token.size();
  if (end < text.size() && is_ident_char(text[end])) return false;
  return true;
}

size_t find_token(const std::string& text, const std::string& token,
                  size_t from = 0) {
  for (size_t pos = text.find(token, from); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (token_at(text, pos, token)) return pos;
  }
  return std::string::npos;
}

size_t skip_spaces(const std::string& text, size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// One source line after comment/string stripping, plus any lint waivers
/// declared in its trailing `// lint: a, b` comment.
struct LineView {
  std::string code;
  std::set<std::string> waivers;
};

std::set<std::string> parse_waivers(const std::string& comment) {
  std::set<std::string> out;
  const size_t tag = comment.find("lint:");
  if (tag == std::string::npos) return out;
  std::string rest = comment.substr(tag + 5);
  std::stringstream parts(rest);
  std::string part;
  while (std::getline(parts, part, ',')) {
    // A parenthesized note after the rule name — `// lint: record-growth
    // (retained mode)` — documents *why*; it is not part of the waiver key.
    const size_t paren = part.find('(');
    if (paren != std::string::npos) part.resize(paren);
    const size_t first = part.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const size_t last = part.find_last_not_of(" \t");
    out.insert(part.substr(first, last - first + 1));
  }
  return out;
}

/// Strips comments and blanks string/char literals, keeping line structure
/// so findings can point at real line numbers. Waivers are read from `//`
/// comments before they are discarded.
std::vector<LineView> preprocess(const std::string& content) {
  std::vector<LineView> lines;
  std::stringstream stream(content);
  std::string raw;
  bool in_block_comment = false;
  while (std::getline(stream, raw)) {
    LineView view;
    view.code.reserve(raw.size());
    size_t i = 0;
    while (i < raw.size()) {
      if (in_block_comment) {
        const size_t close = raw.find("*/", i);
        if (close == std::string::npos) {
          i = raw.size();
        } else {
          in_block_comment = false;
          i = close + 2;
        }
        continue;
      }
      const char c = raw[i];
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/') {
        view.waivers = parse_waivers(raw.substr(i + 2));
        break;
      }
      if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        view.code += quote;
        ++i;
        while (i < raw.size() && raw[i] != quote) {
          if (raw[i] == '\\') ++i;  // skip the escaped character
          ++i;
        }
        view.code += quote;
        if (i < raw.size()) ++i;  // closing quote
        continue;
      }
      view.code += c;
      ++i;
    }
    lines.push_back(std::move(view));
  }
  return lines;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_contains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

/// Files whose iteration order can reach exported artifacts or analysis
/// results. dns/cdn/cellular/net runtime state is excluded by design: it is
/// per-shard and replays an identical operation sequence for every
/// CURTAIN_SHARDS value, so its iteration order never crosses into exports.
bool reaches_export_paths(const std::string& path) {
  return path_contains(path, "src/analysis/") ||
         path_contains(path, "src/measure/") ||
         path_contains(path, "src/exec/") ||
         path_contains(path, "src/core/") ||
         path_contains(path, "src/obs/") || path_contains(path, "bench/") ||
         path_contains(path, "examples/");
}

struct JoinedCode {
  std::string text;                 // code views joined by '\n'
  std::vector<size_t> line_starts;  // offset of each line in `text`

  int line_of(size_t offset) const {
    const auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                                     offset);
    return static_cast<int>(it - line_starts.begin());
  }
};

JoinedCode join(const std::vector<LineView>& lines) {
  JoinedCode joined;
  for (const LineView& line : lines) {
    joined.line_starts.push_back(joined.text.size());
    joined.text += line.code;
    joined.text += '\n';
  }
  return joined;
}

/// Offset just past the matching close of the bracket at `open` (which must
/// index a '(', '<', '{' or '['); npos when unbalanced.
size_t match_bracket(const std::string& text, size_t open) {
  const char open_char = text[open];
  const char close_char = open_char == '(' ? ')'
                          : open_char == '<' ? '>'
                          : open_char == '{' ? '}'
                                             : ']';
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_char) ++depth;
    if (text[i] == close_char && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

class Linter {
 public:
  /// `sibling_header_content`: the paired .h of a .cpp, consulted only for
  /// unordered-container member declarations, so `for (x : member_)` in
  /// world.cpp is caught even though `member_` is declared in world.h.
  Linter(std::string path, const std::string& content,
         const std::string& sibling_header_content)
      : path_(std::move(path)),
        header_(path_ends_with(path_, ".h")),
        lines_(preprocess(content)),
        joined_(join(lines_)),
        sibling_joined_(join(preprocess(sibling_header_content))) {}

  std::vector<Finding> run() {
    check_entropy();
    check_wallclock();
    check_unordered_iteration();
    check_rng_seed();
    check_record_growth();
    check_header_hygiene();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
              });
    return std::move(findings_);
  }

 private:
  void report(int line, const std::string& rule, std::string message) {
    if (static_cast<size_t>(line) <= lines_.size()) {
      const auto& waivers = lines_[static_cast<size_t>(line - 1)].waivers;
      if (waivers.count(rule) != 0) return;
      if (rule == "unordered-iter" &&
          waivers.count("order-insensitive") != 0) {
        return;
      }
      // `bounded` is the self-documenting spelling for record vectors whose
      // size has a structural cap (a block sealed at the row budget, a
      // fixed ring) rather than growing with campaign length.
      if (rule == "record-growth" && waivers.count("bounded") != 0) return;
      // `profiler-wallclock` is the self-documenting spelling for clock
      // reads inside the flight recorder / perf-timing substrate: real
      // time that is exported as profiling metadata but never feeds a
      // simulated result.
      if (rule == "wallclock" && waivers.count("profiler-wallclock") != 0) {
        return;
      }
    }
    findings_.push_back(Finding{path_, line, rule, std::move(message)});
  }

  void check_token_rule(const std::string& rule, const std::string& token,
                        const std::string& message) {
    for (size_t pos = find_token(joined_.text, token); pos != std::string::npos;
         pos = find_token(joined_.text, token, pos + 1)) {
      report(joined_.line_of(pos), rule, message);
    }
  }

  // entropy: every random draw must flow through net::Rng so that a study
  // seed reproduces the exact dataset.
  void check_entropy() {
    if (path_ends_with(path_, "net/rng.cpp")) return;
    for (const char* token : {"rand", "srand", "random_device"}) {
      check_token_rule("entropy", token,
                       std::string(token) +
                           " bypasses the deterministic net::Rng streams; "
                           "derive an Rng from the scenario seed instead");
    }
  }

  // wallclock: simulation time is net::SimClock; real time may only be
  // touched by the clock substrate itself (and explicitly waived perf
  // timing, which never feeds results).
  void check_wallclock() {
    if (path_ends_with(path_, "net/clock.cpp") ||
        path_ends_with(path_, "net/time.cpp")) {
      return;
    }
    for (const char* token :
         {"system_clock", "steady_clock", "high_resolution_clock",
          "gettimeofday", "clock_gettime", "timespec_get"}) {
      check_token_rule("wallclock", token,
                       std::string(token) +
                           " leaks wall-clock time into the virtual-time "
                           "substrate; use net::SimClock");
    }
    // time(nullptr) / time(NULL): the `time` token alone is far too common,
    // so require the null-argument call shape.
    for (size_t pos = find_token(joined_.text, "time"); pos != std::string::npos;
         pos = find_token(joined_.text, "time", pos + 1)) {
      size_t cursor = skip_spaces(joined_.text, pos + 4);
      if (cursor >= joined_.text.size() || joined_.text[cursor] != '(') continue;
      cursor = skip_spaces(joined_.text, cursor + 1);
      if (token_at(joined_.text, cursor, "nullptr") ||
          token_at(joined_.text, cursor, "NULL")) {
        report(joined_.line_of(pos), "wallclock",
               "time(nullptr) leaks wall-clock time into the virtual-time "
               "substrate; use net::SimClock");
      }
    }
  }

  /// Collects variable (or member/parameter) names declared with
  /// `<container><template-args>` anywhere in `text`.
  static void collect_container_names(const std::string& text,
                                      const char* container,
                                      std::set<std::string>& names) {
    for (size_t pos = find_token(text, container); pos != std::string::npos;
         pos = find_token(text, container, pos + 1)) {
      size_t cursor = skip_spaces(text, pos + std::strlen(container));
      if (cursor >= text.size() || text[cursor] != '<') continue;
      cursor = match_bracket(text, cursor);
      if (cursor == std::string::npos) continue;
      cursor = skip_spaces(text, cursor);
      while (cursor < text.size() &&
             (text[cursor] == '&' || text[cursor] == '*')) {
        cursor = skip_spaces(text, cursor + 1);
      }
      const size_t name_start = cursor;
      while (cursor < text.size() && is_ident_char(text[cursor])) ++cursor;
      if (cursor == name_start) continue;
      const std::string name = text.substr(name_start, cursor - name_start);
      // `> name(` is a function returning the container, not a variable.
      if (skip_spaces(text, cursor) < text.size() &&
          text[skip_spaces(text, cursor)] == '(') {
        continue;
      }
      names.insert(name);
    }
  }

  std::set<std::string> unordered_names() const {
    std::set<std::string> names;
    for (const char* container : {"unordered_map", "unordered_set"}) {
      collect_container_names(joined_.text, container, names);
      collect_container_names(sibling_joined_.text, container, names);
    }
    // A name also declared with a deterministically ordered container is
    // not (only) a hash container — typically a local shadowing a member,
    // or a same-named sequence (e.g. util::SmallVec, whose iteration order
    // is insertion order by construction). Give those the benefit of the
    // doubt rather than flagging every loop over them.
    std::set<std::string> order_safe;
    for (const char* container : {"map", "set", "multimap", "multiset",
                                  "vector", "deque", "array", "SmallVec"}) {
      collect_container_names(joined_.text, container, order_safe);
      collect_container_names(sibling_joined_.text, container, order_safe);
    }
    for (const std::string& name : order_safe) names.erase(name);
    return names;
  }

  // unordered-iter: iterating a hash container feeds bucket order into
  // whatever consumes the loop; in export/analysis-reaching files that is a
  // reproducibility hazard unless explicitly declared order-insensitive.
  void check_unordered_iteration() {
    if (!reaches_export_paths(path_)) return;
    const std::set<std::string> names = unordered_names();
    if (names.empty()) return;

    // Range-for: `for (... : <expr>)` where <expr>'s last identifier
    // component names an unordered container declared in this file.
    for (size_t pos = find_token(joined_.text, "for"); pos != std::string::npos;
         pos = find_token(joined_.text, "for", pos + 1)) {
      const size_t open = skip_spaces(joined_.text, pos + 3);
      if (open >= joined_.text.size() || joined_.text[open] != '(') continue;
      const size_t close = match_bracket(joined_.text, open);
      if (close == std::string::npos) continue;
      const std::string header =
          joined_.text.substr(open + 1, close - open - 2);
      // The range-for ':' sits at bracket depth 0 within the header and is
      // never part of a '::'.
      size_t colon = std::string::npos;
      int depth = 0;
      for (size_t i = 0; i < header.size(); ++i) {
        const char c = header[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        if (c == ':' && depth == 0) {
          if ((i + 1 < header.size() && header[i + 1] == ':') ||
              (i > 0 && header[i - 1] == ':')) {
            continue;
          }
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      std::string range = header.substr(colon + 1);
      // Reduce `a.b`, `a->b_`, `*p` to the final identifier component.
      while (!range.empty() &&
             std::isspace(static_cast<unsigned char>(range.back())) != 0) {
        range.pop_back();
      }
      size_t last = range.size();
      while (last > 0 && is_ident_char(range[last - 1])) --last;
      const std::string final_ident = range.substr(last);
      if (names.count(final_ident) != 0) {
        report(joined_.line_of(pos), "unordered-iter",
               "range-for over unordered container '" + final_ident +
                   "' feeds hash-bucket order into an export/analysis path; "
                   "use std::map / a sorted vector, or waive with "
                   "`// lint: order-insensitive`");
      }
    }

    // Iterator loops: any `<name>.begin()` / `<name>.cbegin()` on a tracked
    // container.
    for (const std::string& name : names) {
      for (const char* method : {".begin", ".cbegin"}) {
        const std::string pattern = name + method;
        for (size_t pos = joined_.text.find(pattern); pos != std::string::npos;
             pos = joined_.text.find(pattern, pos + 1)) {
          if (pos > 0 && is_ident_char(joined_.text[pos - 1])) continue;
          report(joined_.line_of(pos), "unordered-iter",
                 "iterator walk over unordered container '" + name +
                     "' feeds hash-bucket order into an export/analysis "
                     "path; use std::map / a sorted vector, or waive with "
                     "`// lint: order-insensitive`");
        }
      }
    }
  }

  void require_seeded_construction(size_t token_pos, size_t args_open) {
    const size_t args_close = match_bracket(joined_.text, args_open);
    const std::string args =
        args_close == std::string::npos
            ? joined_.text.substr(args_open)
            : joined_.text.substr(args_open, args_close - args_open);
    for (const char* source : {"mix_key", "hash_tag", "derive", "seed",
                               "Seed"}) {
      if (args.find(source) != std::string::npos) return;
    }
    report(joined_.line_of(token_pos), "rng-seed",
           "Rng constructed from a value not traceable to "
           "mix_key/hash_tag/derive/a seed; every stream must derive from "
           "Scenario::seed");
  }

  // rng-seed: Rng streams must be derived, never seeded ad hoc, so adding a
  // consumer can never perturb another stream.
  void check_rng_seed() {
    if (path_ends_with(path_, "net/rng.cpp") ||
        path_ends_with(path_, "net/rng.h")) {
      return;
    }
    for (size_t pos = find_token(joined_.text, "Rng"); pos != std::string::npos;
         pos = find_token(joined_.text, "Rng", pos + 1)) {
      size_t cursor = skip_spaces(joined_.text, pos + 3);
      if (cursor >= joined_.text.size()) break;
      if (joined_.text[cursor] == '(') {
        // Temporary: Rng(<args>).
        require_seeded_construction(pos, cursor);
        continue;
      }
      if (joined_.text[cursor] == '>') {
        // make_shared<net::Rng>(<args>) / make_unique<net::Rng>(<args>).
        const size_t call = skip_spaces(joined_.text, cursor + 1);
        if (call < joined_.text.size() && joined_.text[call] == '(') {
          require_seeded_construction(pos, call);
        }
        continue;
      }
      if (!is_ident_char(joined_.text[cursor])) continue;
      // Named construction: Rng <name>(<args>).
      while (cursor < joined_.text.size() && is_ident_char(joined_.text[cursor])) {
        ++cursor;
      }
      cursor = skip_spaces(joined_.text, cursor);
      if (cursor < joined_.text.size() && joined_.text[cursor] == '(') {
        require_seeded_construction(pos, cursor);
      }
    }
  }

  // record-growth: a std::vector of measurement-record rows is the
  // grow-forever accumulation pattern the streaming record-block pipeline
  // replaced (DESIGN.md §15) — at a million devices it is exactly what
  // breaks the RSS ceiling. Rows belong in a RecordBlock sealed at the
  // row budget and flushed to a RecordSink; structurally capped vectors
  // (the block's own rows, fixed rings) waive with `// lint: bounded`,
  // and an explicitly retained store waives with `// lint: record-growth`.
  void check_record_growth() {
    static const char* const kRecordTypes[] = {
        "ExperimentContext",     "DnsMeasurement",  "ProbeMeasurement",
        "TracerouteMeasurement", "ResolverObservation", "VantageProbe",
        "ResolutionTrace",       "RecordBlock"};
    for (size_t pos = find_token(joined_.text, "vector");
         pos != std::string::npos;
         pos = find_token(joined_.text, "vector", pos + 1)) {
      size_t cursor = skip_spaces(joined_.text, pos + 6);
      if (cursor >= joined_.text.size() || joined_.text[cursor] != '<') {
        continue;
      }
      const size_t close = match_bracket(joined_.text, cursor);
      if (close == std::string::npos) continue;
      const std::string inner =
          joined_.text.substr(cursor + 1, close - cursor - 2);
      const char* matched = nullptr;
      for (const char* type : kRecordTypes) {
        if (find_token(inner, type) != std::string::npos) {
          matched = type;
          break;
        }
      }
      if (matched == nullptr) continue;
      // Only owning declarations accumulate: references/pointers view
      // someone else's storage, and `> name(` / `> Qualified::name(` is a
      // function signature, not a vector.
      cursor = skip_spaces(joined_.text, close);
      if (cursor >= joined_.text.size() || joined_.text[cursor] == '&' ||
          joined_.text[cursor] == '*') {
        continue;
      }
      size_t name_end = cursor;
      while (name_end < joined_.text.size() &&
             (is_ident_char(joined_.text[name_end]) ||
              joined_.text.compare(name_end, 2, "::") == 0)) {
        name_end += joined_.text[name_end] == ':' ? size_t{2} : size_t{1};
      }
      if (name_end == cursor) continue;
      if (skip_spaces(joined_.text, name_end) < joined_.text.size() &&
          joined_.text[skip_spaces(joined_.text, name_end)] == '(') {
        continue;
      }
      report(joined_.line_of(pos), "record-growth",
             "std::vector<" + std::string(matched) +
                 "> accumulates measurement records without a bound; "
                 "stream rows through a RecordBlock/RecordSink, or waive a "
                 "structurally capped container with `// lint: bounded`");
    }
  }

  // pragma-once / using-namespace: header hygiene.
  void check_header_hygiene() {
    if (!header_) return;
    bool has_pragma = false;
    for (const LineView& line : lines_) {
      if (line.code.find("#pragma once") != std::string::npos) {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      report(1, "pragma-once", "header is missing #pragma once");
    }
    for (size_t pos = find_token(joined_.text, "using");
         pos != std::string::npos;
         pos = find_token(joined_.text, "using", pos + 1)) {
      const size_t next = skip_spaces(joined_.text, pos + 5);
      if (token_at(joined_.text, next, "namespace")) {
        report(joined_.line_of(pos), "using-namespace",
               "using-namespace in a header leaks names into every includer");
      }
    }
  }

  std::string path_;
  bool header_;
  std::vector<LineView> lines_;
  JoinedCode joined_;
  JoinedCode sibling_joined_;
  std::vector<Finding> findings_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

}  // namespace

std::string format(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content) {
  return Linter(path, content, std::string()).run();
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content,
                               const std::string& sibling_header_content) {
  return Linter(path, content, sibling_header_content).run();
}

std::vector<Finding> lint_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    if (fs::is_regular_file(root)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc") {
        files.push_back(entry.path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    std::string sibling_header;
    if (path_ends_with(file, ".cpp")) {
      const std::string header =
          file.substr(0, file.size() - 4) + ".h";
      if (fs::is_regular_file(header)) sibling_header = read_file(header);
    }
    auto file_findings =
        Linter(file, read_file(file), sibling_header).run();
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace curtain::lint
