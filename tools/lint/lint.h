// curtain_lint — the project's determinism, layering and hygiene linter.
//
// A token-stream analyzer (still no libclang): tools/lint/lexer.h scans
// each file into a token stream plus a comment-stripped, literal-blanked
// code view — raw strings, multi-line comments and preprocessor splices
// are handled exactly — and the rules below run over those views plus the
// include graph. The whole tree lints in milliseconds, cheap enough for
// tier-1 ctest.
//
// Rules (DESIGN.md §11 determinism, §16 layering/hot paths):
//   entropy          std::rand/srand/random_device outside net/rng.cpp
//   wallclock        system_clock/steady_clock/time(nullptr)/... outside
//                    net/clock.cpp and net/time.cpp
//   unordered-iter   iteration over unordered_map/unordered_set in files
//                    that reach export/analysis paths
//   rng-seed         an Rng constructed from anything not traceable to
//                    mix_key/hash_tag/derive/a seed parameter
//   record-growth    std::vector<measurement-record> accumulation outside
//                    the bounded record-block pipeline (DESIGN.md §15)
//   layering         a `#include "module/..."` that walks up or across
//                    the declared layer DAG (include_graph.h; the message
//                    names the violated edge, e.g. `net -> measure`)
//   include-cycle    a file-level include cycle inside src/
//   shared-static    a mutable (non-const/constexpr/thread_local) static
//                    at namespace or function scope — shared state under
//                    the worker pool; the obs singletons carry waivers
//   hot-alloc        allocation idioms in files marked `// lint-hot-path`:
//                    non-placement new, make_unique/make_shared,
//                    std::function, by-value std::string params/copies
//   pragma-once      header missing #pragma once
//   using-namespace  using-namespace directive in a header
//
// A finding on a line is suppressed by a trailing waiver comment whose
// text starts with `lint:` and names the rule:  `// lint: wallclock`
// (comma-separated for several rules; a parenthesized note documents why:
// `// lint: shared-static (process-wide registry)`). Self-documenting
// aliases: `order-insensitive` waives unordered-iter, `bounded` waives
// record-growth for structurally capped containers, `profiler-wallclock`
// waives wallclock in the profiling substrate. Every active waiver is
// inventoried in tools/lint/WAIVERS.txt (regenerate with
// `curtain_lint --waivers src bench examples tools`); `scripts/check.sh
// lint` fails when the tree and the inventory drift, so waiver growth is
// reviewed, not silent.
#pragma once

#include <string>
#include <vector>

namespace curtain::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// One active `// lint:` waiver in the tree (for the committed inventory).
struct Waiver {
  std::string file;
  int line = 0;
  std::string rule;  ///< as written, aliases included
};

/// "file:line: [rule] message" — the format every finding is printed in.
std::string format(const Finding& finding);

/// "file:line: rule" — one inventory row (WAIVERS.txt format).
std::string format(const Waiver& waiver);

/// Findings as a JSON array of {file, line, rule, message} objects, for
/// `--format=json` (machine-readable CI annotations).
std::string format_json(const std::vector<Finding>& findings);

/// Lints one file's content. `path` decides which rules and exemptions
/// apply (it is matched as a suffix/substring, so relative fixture paths
/// like "src/analysis/foo.cpp" behave like real tree paths).
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content);

/// As above, with the paired header's content supplied so member
/// declarations there participate in unordered-iteration tracking (this is
/// what lint_tree does automatically for every x.cpp with a same-stem
/// header: sibling x.h/x.hpp, or x.h/x.hpp in an include/ directory next
/// to or one level above the source).
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content,
                               const std::string& sibling_header_content);

/// An in-memory file for lint_file_set (tests, tooling).
struct FileContent {
  std::string path;
  std::string content;
};

/// Lints a set of files as one tree: per-file rules with same-stem header
/// pairing resolved within the set, plus the include-graph passes
/// (include-cycle) across the set. Findings are sorted by (file, line,
/// rule).
std::vector<Finding> lint_file_set(const std::vector<FileContent>& files);

/// Recursively lints every .h/.hpp/.cpp/.cc under each root (a root may
/// also be a single file). Directories named "testdata" are skipped
/// unless the root itself points into one (so fixture trees lint on
/// purpose, never by accident). Files are visited in sorted path order so
/// output and exit codes are reproducible.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots);

/// Collects every active waiver under the roots (same file discovery as
/// lint_tree), sorted by (file, line, rule) — the `--waivers` inventory.
std::vector<Waiver> collect_waivers(const std::vector<std::string>& roots);

}  // namespace curtain::lint
