// curtain_lint — the project's determinism and hygiene linter.
//
// A focused line-oriented scanner (no libclang): comments and string
// literals are stripped into a "code view", then each rule pattern-matches
// against it. That is deliberately shallow — the rules target idioms this
// codebase bans outright, so token-level matching is enough, and the whole
// tree lints in milliseconds, cheap enough for tier-1 ctest.
//
// Rules (DESIGN.md §11):
//   entropy          std::rand/srand/random_device outside net/rng.cpp
//   wallclock        system_clock/steady_clock/time(nullptr)/... outside
//                    net/clock.cpp and net/time.cpp
//   unordered-iter   iteration over unordered_map/unordered_set in files
//                    that reach export/analysis paths
//   rng-seed         an Rng constructed from anything not traceable to
//                    mix_key/hash_tag/derive/a seed parameter
//   pragma-once      header missing #pragma once
//   using-namespace  using-namespace directive in a header
//
// A finding on a line is suppressed by a trailing waiver comment naming the
// rule:  `// lint: wallclock`  (comma-separated for several rules;
// `order-insensitive` is the idiomatic alias for unordered-iter).
#pragma once

#include <string>
#include <vector>

namespace curtain::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message" — the format every finding is printed in.
std::string format(const Finding& finding);

/// Lints one file's content. `path` decides which rules and exemptions
/// apply (it is matched as a suffix/substring, so relative fixture paths
/// like "src/analysis/foo.cpp" behave like real tree paths).
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content);

/// As above, with the paired header's content supplied so member
/// declarations there participate in unordered-iteration tracking (this is
/// what lint_tree does automatically for every x.cpp with a sibling x.h).
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& content,
                               const std::string& sibling_header_content);

/// Recursively lints every .h/.cpp under each root (a root may also be a
/// single file). Files are visited in sorted path order so output and
/// exit codes are reproducible.
std::vector<Finding> lint_tree(const std::vector<std::string>& roots);

}  // namespace curtain::lint
