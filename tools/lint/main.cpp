// curtain_lint entry point.
//
//   curtain_lint <file-or-dir>...
//
// Lints every .h/.cpp under the given roots, prints one
// `file:line: [rule] message` per finding and exits nonzero when anything
// fired. Registered as the tier-1 `LintTree` ctest over src/, bench/ and
// examples/; see tools/lint/lint.h for the rule set and waiver syntax.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: curtain_lint <file-or-dir>...\n"
                 "rules: entropy wallclock unordered-iter rng-seed "
                 "pragma-once using-namespace\n"
                 "waive a line with `// lint: <rule>` "
                 "(`order-insensitive` aliases unordered-iter)\n");
    return 2;
  }
  std::vector<std::string> roots(argv + 1, argv + argc);
  const auto findings = curtain::lint::lint_tree(roots);
  for (const auto& finding : findings) {
    std::printf("%s\n", curtain::lint::format(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "curtain_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
