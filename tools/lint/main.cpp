// curtain_lint entry point.
//
//   curtain_lint [--format=json] <file-or-dir>...
//   curtain_lint --waivers <file-or-dir>...
//
// Lints every .h/.hpp/.cpp/.cc under the given roots. The default output
// is one `file:line: [rule] message` per finding (exit 1 when anything
// fired); `--format=json` prints the findings as a JSON array instead, for
// machine-readable CI annotations. `--waivers` switches to the inventory
// mode: instead of linting, print every active `// lint:` waiver as
// `file:line: rule` — `scripts/check.sh lint` diffs that output against
// the committed tools/lint/WAIVERS.txt so waiver growth is reviewed, not
// silent. Registered as the tier-1 `LintTree` ctest over src/, bench/,
// examples/ and tools/; see tools/lint/lint.h for the rule set and waiver
// syntax.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: curtain_lint [--format=json] <file-or-dir>...\n"
      "       curtain_lint --waivers <file-or-dir>...\n"
      "rules: entropy wallclock unordered-iter rng-seed record-growth\n"
      "       layering include-cycle shared-static hot-alloc\n"
      "       pragma-once using-namespace\n"
      "waive a line with `// lint: <rule> (why)`; aliases:\n"
      "  order-insensitive -> unordered-iter   bounded -> record-growth\n"
      "  profiler-wallclock -> wallclock\n"
      "--waivers prints the active-waiver inventory (WAIVERS.txt format)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool waivers = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format=json") {
      json = true;
    } else if (arg == "--waivers") {
      waivers = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "curtain_lint: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  if (waivers) {
    for (const auto& waiver : curtain::lint::collect_waivers(roots)) {
      std::printf("%s\n", curtain::lint::format(waiver).c_str());
    }
    return 0;
  }

  const auto findings = curtain::lint::lint_tree(roots);
  if (json) {
    std::printf("%s\n", curtain::lint::format_json(findings).c_str());
  } else {
    for (const auto& finding : findings) {
      std::printf("%s\n", curtain::lint::format(finding).c_str());
    }
  }
  if (!findings.empty()) {
    if (!json) {
      std::fprintf(stderr, "curtain_lint: %zu finding(s)\n", findings.size());
    }
    return 1;
  }
  return 0;
}
