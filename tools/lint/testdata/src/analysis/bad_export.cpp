// Deliberately non-compiling lint fixture: every determinism rule must
// fire on this file (the LintFixturesFire ctest asserts a nonzero exit).
// The src/analysis/ path component puts it in unordered-iter scope.
#include <unordered_map>

std::unordered_map<int, double> totals;

void dump() {
  for (const auto& [k, v] : totals) emit(k, v);
}

void bad_entropy() {
  int x = rand();
  std::random_device rd;
}

void bad_wallclock() {
  auto t = std::chrono::steady_clock::now();
  auto u = time(nullptr);
}

void bad_rng_seed() {
  net::Rng rng(42);
}

struct BadRetainer {
  std::vector<DnsMeasurement> all_measurements;
  std::vector<measure::RecordBlock> kept_blocks;
};
