// Lint fixture: missing #pragma once and a using-namespace directive —
// both header-hygiene rules must fire.
using namespace std;

int forty_two();
