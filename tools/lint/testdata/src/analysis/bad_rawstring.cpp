// Lint fixture for the raw-string lexing bug: the old per-line stripper
// treated the lone `"` inside the raw literal as opening an ordinary
// string, so everything after it — including the real code on the closing
// line — was blanked and the rand() below went unseen. The token-stream
// lexer must fire entropy on the closing line, and must NOT scan the
// literal's contents (the rand/steady_clock mentions inside are prose).
#include <string>

const char* kReplicaQuery = R"sql(
  SELECT "hostname" FROM replicas -- rand() steady_clock inside a literal
  WHERE rtt_ms < 40
)sql"; int jitter_seed = rand();
