// Lint fixture: iterates a hash member declared only in the sibling
// agg.hpp — unordered-iter must fire here via .hpp header pairing.
#include "analysis/pair/agg.hpp"

double Agg::sum() const {
  double total = 0;
  for (const auto& [k, v] : buckets_) total += v;
  return total;
}
