// Lint fixture: same-stem .hpp header — the hash member declared here
// must feed unordered-iter tracking in the paired agg.cpp (the pairing
// used to be .h-only; .hpp siblings are a supported layout now).
#pragma once
#include <unordered_map>

struct Agg {
  std::unordered_map<int, double> buckets_;
  double sum() const;
};
