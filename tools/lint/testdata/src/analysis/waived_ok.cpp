// Lint fixture: the same hazards as bad_export.cpp, each waived. This file
// must contribute zero findings (lint_test asserts the fixture directory's
// finding set comes entirely from the bad_* files).
#include <unordered_map>

std::unordered_map<int, double> totals;

double max_total() {
  double best = 0;
  for (const auto& [k, v] : totals) best = pick(best, v);  // lint: order-insensitive
  return best;
}

void timed() {
  auto t = std::chrono::steady_clock::now();  // lint: wallclock
  int jitter = rand();                        // lint: entropy
  net::Rng rng(77);                           // lint: rng-seed
}

struct OkRetainer {
  std::vector<DnsMeasurement> sealed_rows;       // lint: bounded
  std::vector<RecordBlock> retained;             // lint: record-growth (test keeps blocks)
};
