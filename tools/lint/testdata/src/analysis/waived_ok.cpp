// Lint fixture: the same hazards as the bad_* files, each waived. This
// file must contribute zero findings (lint_test asserts the fixture
// directory's finding set comes entirely from the bad_* files).
// lint-hot-path (so the waived allocation below is actually exercised)
#include <unordered_map>
#include "core/study.h"  // lint: layering (fixture exercises a waived upward edge)

std::unordered_map<int, double> totals;

static int g_fixture_hits = 0;  // lint: shared-static (fixture counter)

double max_total() {
  double best = 0;
  for (const auto& [k, v] : totals) best = pick(best, v);  // lint: order-insensitive
  return best;
}

void timed() {
  auto t = std::chrono::steady_clock::now();  // lint: wallclock
  int jitter = rand();                        // lint: entropy
  net::Rng rng(77);                           // lint: rng-seed
}

int* scratch_slot() {
  return new int(0);  // lint: hot-alloc (fixture exercises a waived allocation)
}

struct OkRetainer {
  std::vector<DnsMeasurement> sealed_rows;       // lint: bounded
  std::vector<RecordBlock> retained;             // lint: record-growth (test keeps blocks)
};
