// Lint fixture: a file marked lint-hot-path using every allocation idiom
// the hot-alloc rule tracks — non-placement new, make_unique, a
// std::function member, and a by-value std::string parameter. The
// placement new at the bottom reuses storage and must not fire.
// lint-hot-path
#include <functional>
#include <memory>
#include <string>

struct Resolver;

Resolver* grow() { return new Resolver(); }

std::unique_ptr<Resolver> boxed() { return std::make_unique<Resolver>(); }

std::function<void()> deferred_wakeup;

void lookup(std::string name);

void reuse(void* slot) { ::new (slot) Resolver(); }
