// Lint fixture: mutable statics at namespace and function scope — two
// shared-static findings. The const table and the thread_local slot must
// not fire, and neither must the static free function.
#include <string>

static int g_campaign_counter = 0;

namespace exec {

static const char* const kCohortNames[] = {"urban", "rural"};

static int helper_fn(int x) { return x + 1; }

int next_id() {
  static int last_id = 0;
  return ++last_id;
}

int scratch() {
  static thread_local int slot = 0;
  return slot + helper_fn(0);
}

}  // namespace exec
