// Lint fixture: cyc_a.h and cyc_b.h include each other — the
// include-cycle rule must fire exactly once, anchored at the include that
// closes the cycle, with the full chain in the message.
#pragma once
#include "measure/cyc_b.h"

struct CycA {};
