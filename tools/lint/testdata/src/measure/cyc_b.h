// Lint fixture: second half of the cyc_a.h <-> cyc_b.h include cycle.
#pragma once
#include "measure/cyc_a.h"

struct CycB {};
