// Lint fixture: net (layer 2) reaching up into measure (layer 5) — the
// layering rule must fire and name the violated edge in its message.
#include "measure/records.h"

void poke_records() { measure::touch(); }
